//! Activity-coupled chip thermal model: a per-ONI RC network driven by the
//! power the interconnect itself dissipates.
//!
//! The [`crate::ThermalEnvironment`] scenarios play back *prescribed*
//! temperature traces.  In a real package the heat comes from the link: the
//! laser, the ring heaters and the drivers dissipate into the interposer,
//! the local temperature rises, the rings drift, the runtime manager reacts,
//! and the new operating point changes the dissipation again.  Closing that
//! loop needs a thermal plant the simulator can *drive* with deposited
//! electrical power instead of sampling from a fixed trace.
//!
//! [`ActivityCoupledEnvironment`] is that plant: every ONI is one node of a
//! ring-topology RC network with
//!
//! * a heat capacity `C` (how much energy one kelvin of excess costs),
//! * a resistance `R_amb` to the package ambient (heat-sinking), and
//! * a coupling resistance `R_c` to each ring neighbour (lateral spreading
//!   through the interposer).
//!
//! The node equation integrated by [`ActivityCoupledEnvironment::step`] is
//!
//! ```text
//! C · dT_i/dt = P_i(t) − (T_i − T_amb)/R_amb − Σ_{j∈N(i)} (T_i − T_j)/R_c
//! ```
//!
//! # Units
//!
//! Powers are milliwatts, times are nanoseconds and energies picojoules
//! (1 mW × 1 ns = 1 pJ), matching the NoC simulator's time base.  With the
//! heat capacity in pJ/K and resistances in K/mW the thermal time constant
//! `τ = R_amb·C` comes out directly in nanoseconds.
//!
//! The [`RcNetworkParameters::paper_package`] defaults are deliberately
//! *accelerated*: a real package has τ in the millisecond range, six orders
//! of magnitude beyond what a nanosecond-scale NoC simulation can reach, so
//! the defaults scale the heat capacity down until the steady-state
//! temperatures (which depend only on the resistances, not on `C`) develop
//! within a few microseconds of simulated time.  The steady-state excess per
//! channel solves `ΔT = R_amb × P_channel(25 °C + ΔT)` — the channel power
//! itself grows with temperature (hot laser, ring heaters), which is the
//! positive feedback this model exists to capture.  At the default
//! 0.10 K/mW an always-on uncoded channel (≈ 240 mW cold, ≈ 355 mW at
//! 45 °C) heads past the ≈ 50 °C collapse of the uncoded link budget,
//! while an H(71,64) channel balances near 45 °C: switching to the coded
//! scheme genuinely cools the node.

use onoc_units::Celsius;
use serde::{Deserialize, Serialize};

/// Physical parameters of the per-ONI thermal RC network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcNetworkParameters {
    /// Package ambient temperature (the heat-sink side of `R_amb`).
    pub ambient: Celsius,
    /// Heat capacity of one ONI node, in pJ/K.
    pub heat_capacity_pj_per_k: f64,
    /// Thermal resistance from each node to the ambient, in K/mW.
    pub ambient_resistance_k_per_mw: f64,
    /// Thermal resistance between ring neighbours, in K/mW.
    pub coupling_resistance_k_per_mw: f64,
}

impl RcNetworkParameters {
    /// The accelerated package used by the feedback demonstrations (see the
    /// module documentation for the scaling rationale): 25 °C ambient,
    /// `R_amb` = 0.10 K/mW, `R_c` = 1.5 K/mW, `C` = 2000 pJ/K
    /// (τ = 200 ns).
    #[must_use]
    pub fn paper_package() -> Self {
        Self {
            ambient: Celsius::new(25.0),
            heat_capacity_pj_per_k: 2000.0,
            ambient_resistance_k_per_mw: 0.10,
            coupling_resistance_k_per_mw: 1.5,
        }
    }

    /// Thermal time constant `τ = R_amb·C` of an isolated node, in
    /// nanoseconds.
    #[must_use]
    pub fn time_constant_ns(&self) -> f64 {
        self.ambient_resistance_k_per_mw * self.heat_capacity_pj_per_k
    }

    /// Steady-state temperature excess of an isolated node dissipating
    /// `power_mw`, in kelvin.
    #[must_use]
    pub fn steady_state_excess_k(&self, power_mw: f64) -> f64 {
        self.ambient_resistance_k_per_mw * power_mw
    }

    /// Checks the parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the ambient is not finite or any
    /// of the capacity/resistance figures is not positive and finite.
    pub fn validate(&self) -> Result<(), String> {
        if !self.ambient.value().is_finite() {
            return Err(format!(
                "RC network ambient temperature must be finite, got {}",
                self.ambient.value()
            ));
        }
        let positive = [
            ("heat capacity", self.heat_capacity_pj_per_k),
            ("ambient resistance", self.ambient_resistance_k_per_mw),
            ("coupling resistance", self.coupling_resistance_k_per_mw),
        ];
        for (name, value) in positive {
            if !(value > 0.0 && value.is_finite()) {
                return Err(format!(
                    "RC network {name} must be positive and finite, got {value}"
                ));
            }
        }
        Ok(())
    }
}

impl Default for RcNetworkParameters {
    fn default() -> Self {
        Self::paper_package()
    }
}

/// The stateful per-ONI thermal plant: node temperatures evolved by the
/// power the simulator deposits each epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityCoupledEnvironment {
    parameters: RcNetworkParameters,
    temperatures_c: Vec<f64>,
}

impl ActivityCoupledEnvironment {
    /// Creates the network with every node at the package ambient.
    ///
    /// # Panics
    ///
    /// Panics if `oni_count` is zero or the parameters are invalid (see
    /// [`RcNetworkParameters::validate`]).
    #[must_use]
    pub fn new(oni_count: usize, parameters: RcNetworkParameters) -> Self {
        assert!(oni_count > 0, "at least one ONI is required");
        parameters
            .validate()
            .unwrap_or_else(|reason| panic!("invalid RC network parameters: {reason}"));
        Self {
            temperatures_c: vec![parameters.ambient.value(); oni_count],
            parameters,
        }
    }

    /// Number of nodes (ONIs) in the network.
    #[must_use]
    pub fn oni_count(&self) -> usize {
        self.temperatures_c.len()
    }

    /// The network parameters.
    #[must_use]
    pub fn parameters(&self) -> &RcNetworkParameters {
        &self.parameters
    }

    /// Current node temperatures in °C, indexed by ONI.
    #[must_use]
    pub fn temperatures_c(&self) -> &[f64] {
        &self.temperatures_c
    }

    /// Current temperature of one node.
    ///
    /// # Panics
    ///
    /// Panics if `oni` is out of range.
    #[must_use]
    pub fn temperature_of(&self, oni: usize) -> Celsius {
        Celsius::new(self.temperatures_c[oni])
    }

    /// The hottest node temperature.
    #[must_use]
    pub fn hottest(&self) -> Celsius {
        Celsius::new(
            self.temperatures_c
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Advances the network by `dt_ns` nanoseconds with `deposited_power_mw`
    /// milliwatts dissipated into each node over that interval.
    ///
    /// Integration is explicit Euler with internal sub-stepping well inside
    /// the stability bound, so arbitrarily long idle gaps can be stepped in
    /// one call (the sub-step count is capped; past the cap the network has
    /// long since converged to its steady state).
    ///
    /// # Panics
    ///
    /// Panics if `deposited_power_mw` does not have one entry per node, any
    /// entry is not finite, or `dt_ns` is negative or not finite.
    pub fn step(&mut self, deposited_power_mw: &[f64], dt_ns: f64) {
        assert_eq!(
            deposited_power_mw.len(),
            self.temperatures_c.len(),
            "one power entry per ONI is required"
        );
        assert!(
            dt_ns >= 0.0 && dt_ns.is_finite(),
            "step duration must be non-negative and finite"
        );
        assert!(
            deposited_power_mw.iter().all(|p| p.is_finite()),
            "deposited powers must be finite"
        );
        if dt_ns == 0.0 {
            return;
        }
        let n = self.temperatures_c.len();
        let c = self.parameters.heat_capacity_pj_per_k;
        let g_amb = 1.0 / self.parameters.ambient_resistance_k_per_mw;
        let g_couple = if n > 1 {
            1.0 / self.parameters.coupling_resistance_k_per_mw
        } else {
            0.0
        };
        // Explicit-Euler stability bound is dt < 2C / (g_amb + 2·g_couple);
        // run at 1/100 of the characteristic time for accuracy.  Gaps longer
        // than the capped horizon are truncated: the horizon is hundreds of
        // time constants, past which the network sits at its steady state.
        const MAX_SUBSTEPS: usize = 50_000;
        let rate = (g_amb + 2.0 * g_couple) / c;
        let accurate_dt = 0.02 / rate;
        let total = dt_ns.min(accurate_dt * MAX_SUBSTEPS as f64);
        let substeps = ((total / accurate_dt).ceil() as usize).clamp(1, MAX_SUBSTEPS);
        let sub_dt = total / substeps as f64;
        let ambient = self.parameters.ambient.value();
        let mut next = vec![0.0f64; n];
        for _ in 0..substeps {
            for i in 0..n {
                let t = self.temperatures_c[i];
                let mut flow_mw = deposited_power_mw[i] - (t - ambient) * g_amb;
                if n > 1 {
                    let left = self.temperatures_c[(i + n - 1) % n];
                    let right = self.temperatures_c[(i + 1) % n];
                    flow_mw += ((left - t) + (right - t)) * g_couple;
                }
                next[i] = t + flow_mw * sub_dt / c;
            }
            self.temperatures_c.copy_from_slice(&next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_start_at_the_ambient() {
        let env = ActivityCoupledEnvironment::new(12, RcNetworkParameters::paper_package());
        assert_eq!(env.oni_count(), 12);
        for oni in 0..12 {
            assert!((env.temperature_of(oni).value() - 25.0).abs() < 1e-12);
        }
        assert!((env.hottest().value() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn constant_power_converges_to_the_analytic_steady_state() {
        // A single node has the closed-form steady state ΔT = R_amb × P.
        let params = RcNetworkParameters::paper_package();
        let mut env = ActivityCoupledEnvironment::new(1, params);
        let power = [200.0];
        // 40 time constants: fully converged.
        env.step(&power, params.time_constant_ns() * 40.0);
        let expected = 25.0 + params.steady_state_excess_k(200.0);
        assert!(
            (env.temperature_of(0).value() - expected).abs() < 0.05,
            "steady state {} vs expected {expected}",
            env.temperature_of(0).value()
        );
    }

    #[test]
    fn step_response_follows_the_first_order_time_constant() {
        let params = RcNetworkParameters::paper_package();
        let mut env = ActivityCoupledEnvironment::new(1, params);
        env.step(&[100.0], params.time_constant_ns());
        let excess = env.temperature_of(0).value() - 25.0;
        let expected = params.steady_state_excess_k(100.0) * (1.0 - (-1.0f64).exp());
        assert!(
            (excess - expected).abs() < 0.1,
            "one-τ excess {excess} vs {expected}"
        );
    }

    #[test]
    fn heat_spreads_to_ring_neighbours() {
        let mut env = ActivityCoupledEnvironment::new(8, RcNetworkParameters::paper_package());
        let mut power = vec![0.0; 8];
        power[0] = 250.0;
        env.step(&power, 2000.0);
        let hot = env.temperature_of(0).value();
        let near = env.temperature_of(1).value();
        let far = env.temperature_of(4).value();
        assert!(hot > near, "driven node is hottest");
        assert!(near > far, "neighbours are warmer than the far side");
        assert!(far > 25.0, "heat reaches the far side of the ring");
        // The ring is symmetric around the driven node.
        assert!((env.temperature_of(1).value() - env.temperature_of(7).value()).abs() < 1e-9);
    }

    #[test]
    fn cooling_returns_to_the_ambient() {
        let params = RcNetworkParameters::paper_package();
        let mut env = ActivityCoupledEnvironment::new(4, params);
        env.step(&[200.0; 4], params.time_constant_ns() * 10.0);
        assert!(env.hottest().value() > 40.0);
        env.step(&[0.0; 4], params.time_constant_ns() * 40.0);
        assert!((env.hottest().value() - 25.0).abs() < 0.05);
    }

    #[test]
    fn zero_duration_step_is_a_no_op() {
        let mut env = ActivityCoupledEnvironment::new(3, RcNetworkParameters::paper_package());
        env.step(&[500.0; 3], 0.0);
        assert!((env.hottest().value() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn long_idle_gaps_are_stepped_in_one_call() {
        // The sub-step cap must not prevent convergence over a huge gap.
        let params = RcNetworkParameters::paper_package();
        let mut env = ActivityCoupledEnvironment::new(2, params);
        env.step(&[100.0, 100.0], 1e9);
        let expected = 25.0 + params.steady_state_excess_k(100.0);
        assert!((env.temperature_of(0).value() - expected).abs() < 0.5);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let good = RcNetworkParameters::paper_package();
        assert!(good.validate().is_ok());
        let mut bad = good;
        // Quantity arithmetic bypasses the constructor's finiteness check.
        bad.ambient = Celsius::new(25.0) * f64::NAN;
        assert!(bad.validate().unwrap_err().contains("ambient temperature"));
        let mut bad = good;
        bad.heat_capacity_pj_per_k = 0.0;
        assert!(bad.validate().unwrap_err().contains("heat capacity"));
        let mut bad = good;
        bad.ambient_resistance_k_per_mw = f64::INFINITY;
        assert!(bad.validate().unwrap_err().contains("ambient resistance"));
        let mut bad = good;
        bad.coupling_resistance_k_per_mw = -1.0;
        assert!(bad.validate().unwrap_err().contains("coupling resistance"));
    }

    #[test]
    #[should_panic(expected = "at least one ONI")]
    fn zero_nodes_panics() {
        let _ = ActivityCoupledEnvironment::new(0, RcNetworkParameters::paper_package());
    }

    #[test]
    #[should_panic(expected = "one power entry per ONI")]
    fn mismatched_power_vector_panics() {
        let mut env = ActivityCoupledEnvironment::new(4, RcNetworkParameters::paper_package());
        env.step(&[1.0; 3], 10.0);
    }
}
