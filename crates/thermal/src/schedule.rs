//! Piecewise workload schedules: DVFS phases, task migration and diurnal
//! load curves over the per-ONI [`WorkloadTrace`] substrate.
//!
//! A [`WorkloadTrace`] describes one ONI's compute-cluster heat as a steady
//! baseline plus one burst window — enough for a single static heat map,
//! but real platforms *reschedule*: DVFS governors step power levels,
//! orchestrators migrate tasks between clusters, and datacentre load
//! follows the clock.  [`WorkloadSchedule`] strings phases of per-ONI
//! traces together on one timeline, keeping the property that makes the
//! trace substrate exact: every phase is analytic, so an epoch of any
//! length integrates the schedule with no sampling error — including
//! epochs that straddle a phase boundary.
//!
//! Phase times are *phase-relative*: a trace's burst window is expressed
//! from the start of its own phase, so a phase library composes without
//! re-basing.  The final phase extends to the end of the run, whatever its
//! stated duration — a schedule never runs out of workload.

use serde::{Deserialize, Serialize};

use crate::model::WorkloadTrace;

/// One phase of a [`WorkloadSchedule`]: a duration and one heat-injection
/// trace per ONI, with trace times relative to the phase start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPhase {
    /// Phase length, in nanoseconds (`f64::INFINITY` for an open-ended
    /// final phase).  Must be positive: a zero-length phase can never play.
    pub duration_ns: f64,
    /// One trace per ONI, in phase-relative time.
    pub traces: Vec<WorkloadTrace>,
}

impl WorkloadPhase {
    /// A phase of `duration_ns` over `traces` (one per ONI).
    #[must_use]
    pub fn new(duration_ns: f64, traces: Vec<WorkloadTrace>) -> Self {
        Self {
            duration_ns,
            traces,
        }
    }
}

/// A piecewise workload: consecutive [`WorkloadPhase`]s on one timeline.
///
/// The schedule is the *scheduled* generalization of a single
/// [`WorkloadTrace`] vector: [`WorkloadSchedule::single`] wraps today's
/// one-shot traces into a one-phase schedule that integrates bit-identically,
/// while multi-phase schedules express DVFS steps
/// ([`WorkloadSchedule::diurnal`]) and task migration between clusters
/// ([`WorkloadSchedule::migration`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSchedule {
    /// The phases, in play order.  The final phase extends to the end of
    /// the run regardless of its stated duration.
    pub phases: Vec<WorkloadPhase>,
}

impl WorkloadSchedule {
    /// A schedule over explicit phases.
    #[must_use]
    pub fn new(phases: Vec<WorkloadPhase>) -> Self {
        Self { phases }
    }

    /// The single-phase schedule equivalent to today's plain trace vector:
    /// one open-ended phase whose trace times coincide with absolute run
    /// time.  Integrates bit-identically to the traces themselves.
    #[must_use]
    pub fn single(traces: Vec<WorkloadTrace>) -> Self {
        Self {
            phases: vec![WorkloadPhase::new(f64::INFINITY, traces)],
        }
    }

    /// Task migration between clusters: one phase of `phase_duration_ns`
    /// per entry of `centers`, each a [`WorkloadTrace::hot_cluster`] of
    /// `peak_mw` centred on that ONI.  The workload "moves" across the
    /// interposer at every boundary; the last cluster keeps running to the
    /// end of the run.
    ///
    /// # Panics
    ///
    /// Panics if `centers` is empty, `oni_count` is zero or
    /// `decay_per_hop` is outside `[0, 1)`.
    #[must_use]
    pub fn migration(
        oni_count: usize,
        phase_duration_ns: f64,
        centers: &[usize],
        peak_mw: f64,
        decay_per_hop: f64,
    ) -> Self {
        assert!(
            !centers.is_empty(),
            "at least one cluster centre is required"
        );
        Self {
            phases: centers
                .iter()
                .map(|&center| {
                    WorkloadPhase::new(
                        phase_duration_ns,
                        WorkloadTrace::hot_cluster(oni_count, center, peak_mw, decay_per_hop),
                    )
                })
                .collect(),
        }
    }

    /// A diurnal (stepped-uniform) load curve: one phase of
    /// `phase_duration_ns` per entry of `levels_mw`, each injecting that
    /// constant power into every ONI.  The last level holds to the end of
    /// the run.
    ///
    /// # Panics
    ///
    /// Panics if `levels_mw` is empty or `oni_count` is zero.
    #[must_use]
    pub fn diurnal(oni_count: usize, phase_duration_ns: f64, levels_mw: &[f64]) -> Self {
        assert!(!levels_mw.is_empty(), "at least one load level is required");
        assert!(oni_count > 0, "at least one ONI is required");
        Self {
            phases: levels_mw
                .iter()
                .map(|&level| {
                    WorkloadPhase::new(
                        phase_duration_ns,
                        vec![WorkloadTrace::constant(level); oni_count],
                    )
                })
                .collect(),
        }
    }

    /// Number of phases.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Checks the schedule against the scenario's ONI count.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the schedule is empty, a phase
    /// duration is zero-length, negative or NaN, a non-final phase is
    /// open-ended (later phases would never play), a phase does not carry
    /// exactly one trace per ONI, or a trace is invalid.
    pub fn validate(&self, oni_count: usize) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("a workload schedule needs at least one phase".into());
        }
        for (index, phase) in self.phases.iter().enumerate() {
            if phase.duration_ns <= 0.0 || phase.duration_ns.is_nan() {
                return Err(format!(
                    "phase {index} duration must be positive, got {} ns \
                     (a zero-length phase can never play)",
                    phase.duration_ns
                ));
            }
            if phase.duration_ns.is_infinite() && index + 1 < self.phases.len() {
                return Err(format!(
                    "phase {index} is open-ended but {} phase(s) follow it; \
                     only the final phase may be infinite",
                    self.phases.len() - index - 1
                ));
            }
            if phase.traces.len() != oni_count {
                return Err(format!(
                    "phase {index} needs one trace per ONI: got {} traces for {oni_count} ONIs",
                    phase.traces.len()
                ));
            }
            for (oni, trace) in phase.traces.iter().enumerate() {
                trace
                    .validate()
                    .map_err(|reason| format!("phase {index}, ONI {oni}: {reason}"))?;
            }
        }
        Ok(())
    }

    /// Absolute start time of phase `index`, in nanoseconds (0 for the
    /// first phase; cumulative durations after that).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn phase_start_ns(&self, index: usize) -> f64 {
        assert!(index < self.phases.len(), "phase index out of range");
        // `Sum for f64` folds from -0.0, which would leak a negative zero
        // into the first phase's start time (and into rendered reports).
        self.phases[..index]
            .iter()
            .map(|phase| phase.duration_ns)
            .fold(0.0, |total, duration| total + duration)
    }

    /// Absolute start times of every phase, in play order.
    #[must_use]
    pub fn phase_starts(&self) -> Vec<f64> {
        (0..self.phases.len())
            .map(|index| self.phase_start_ns(index))
            .collect()
    }

    /// The phase containing `time_ns`.  The final phase is open-ended: any
    /// time at or beyond its start maps to it, whatever its stated
    /// duration.
    ///
    /// # Panics
    ///
    /// Panics if the schedule has no phases.
    #[must_use]
    pub fn phase_index_at(&self, time_ns: f64) -> usize {
        assert!(
            !self.phases.is_empty(),
            "a schedule needs at least one phase"
        );
        let mut start = 0.0f64;
        for (index, phase) in self.phases.iter().enumerate() {
            let end = start + phase.duration_ns;
            if time_ns < end || index + 1 == self.phases.len() {
                return index;
            }
            start = end;
        }
        unreachable!("the final phase catches every time");
    }

    /// Instantaneous injected power of ONI `oni` at absolute `time_ns`, in
    /// mW.
    ///
    /// # Panics
    ///
    /// Panics if `oni` is out of range for the active phase.
    #[must_use]
    pub fn power_at(&self, oni: usize, time_ns: f64) -> f64 {
        let phase = self.phase_index_at(time_ns);
        self.phases[phase].traces[oni].power_at(time_ns - self.phase_start_ns(phase))
    }

    /// Exact time-average of ONI `oni`'s injected power over
    /// `[from_ns, to_ns]`, in mW: the interval is split at phase
    /// boundaries and each segment integrates its own phase's trace in
    /// phase-relative time.  Equal to [`WorkloadSchedule::power_at`] for a
    /// degenerate interval; bit-identical to the trace's own
    /// [`WorkloadTrace::mean_power_mw`] for a single-phase schedule.
    ///
    /// # Panics
    ///
    /// Panics if the interval is inverted (`from_ns > to_ns`) or `oni` is
    /// out of range.
    #[must_use]
    pub fn mean_power_mw(&self, oni: usize, from_ns: f64, to_ns: f64) -> f64 {
        assert!(
            from_ns.partial_cmp(&to_ns) != Some(std::cmp::Ordering::Greater),
            "workload power interval must not be inverted, got [{from_ns}, {to_ns}]"
        );
        let span = to_ns - from_ns;
        if span <= 0.0 {
            return self.power_at(oni, from_ns);
        }
        let first = self.phase_index_at(from_ns);
        let start = self.phase_start_ns(first);
        // The common case — the whole interval inside one phase — delegates
        // straight to the trace so a single-phase schedule reproduces the
        // plain-trace arithmetic bit for bit (the first phase starts at
        // exactly 0.0, and `x - 0.0 == x`).
        if first == self.phase_index_at(to_ns) {
            return self.phases[first].traces[oni].mean_power_mw(from_ns - start, to_ns - start);
        }
        let mut energy_mw_ns = 0.0f64;
        let mut phase_start = start;
        for (index, phase) in self.phases.iter().enumerate().skip(first) {
            let phase_end = if index + 1 == self.phases.len() {
                f64::INFINITY
            } else {
                phase_start + phase.duration_ns
            };
            let seg_from = from_ns.max(phase_start);
            let seg_to = to_ns.min(phase_end);
            if seg_to > seg_from {
                energy_mw_ns += phase.traces[oni]
                    .mean_power_mw(seg_from - phase_start, seg_to - phase_start)
                    * (seg_to - seg_from);
            }
            if phase_end >= to_ns {
                break;
            }
            phase_start = phase_end;
        }
        energy_mw_ns / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> WorkloadSchedule {
        // Phase 0: 100 ns at 10 mW; phase 1 (open-ended): 50 mW with a
        // phase-relative burst of +30 mW over its first 20 ns.
        WorkloadSchedule::new(vec![
            WorkloadPhase::new(100.0, vec![WorkloadTrace::constant(10.0)]),
            WorkloadPhase::new(
                f64::INFINITY,
                vec![WorkloadTrace {
                    baseline_mw: 50.0,
                    burst_mw: 30.0,
                    burst_start_ns: 0.0,
                    burst_stop_ns: 20.0,
                }],
            ),
        ])
    }

    #[test]
    fn phase_lookup_and_starts() {
        let schedule = two_phase();
        assert_eq!(schedule.phase_starts(), vec![0.0, 100.0]);
        assert_eq!(schedule.phase_index_at(0.0), 0);
        assert_eq!(schedule.phase_index_at(99.9), 0);
        assert_eq!(schedule.phase_index_at(100.0), 1);
        assert_eq!(schedule.phase_index_at(1e9), 1);
    }

    #[test]
    fn phase_relative_times_shift_with_the_phase() {
        let schedule = two_phase();
        assert!((schedule.power_at(0, 50.0) - 10.0).abs() < 1e-12);
        // The burst window is relative to phase 1's start at t = 100 ns.
        assert!((schedule.power_at(0, 105.0) - 80.0).abs() < 1e-12);
        assert!((schedule.power_at(0, 125.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn cross_boundary_intervals_integrate_exactly() {
        let schedule = two_phase();
        // [80, 120]: 20 ns at 10 mW + 20 ns at 80 mW = 45 mW average.
        assert!((schedule.mean_power_mw(0, 80.0, 120.0) - 45.0).abs() < 1e-12);
        // Entirely inside one phase, away from the burst.
        assert!((schedule.mean_power_mw(0, 130.0, 200.0) - 50.0).abs() < 1e-12);
        // Degenerate interval falls back to the instantaneous power.
        assert!((schedule.mean_power_mw(0, 110.0, 110.0) - 80.0).abs() < 1e-12);
    }

    #[test]
    fn single_phase_schedule_matches_the_plain_trace_bit_for_bit() {
        let trace = WorkloadTrace {
            baseline_mw: 12.5,
            burst_mw: 87.5,
            burst_start_ns: 40.0,
            burst_stop_ns: 90.0,
        };
        let schedule = WorkloadSchedule::single(vec![trace]);
        for (from, to) in [(0.0, 25.0), (30.0, 95.0), (10.0, 10.0), (85.0, 400.0)] {
            assert_eq!(
                schedule.mean_power_mw(0, from, to).to_bits(),
                trace.mean_power_mw(from, to).to_bits(),
                "[{from}, {to}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_intervals_panic() {
        let _ = two_phase().mean_power_mw(0, 50.0, 10.0);
    }

    #[test]
    fn validation_rejects_malformed_schedules() {
        assert!(WorkloadSchedule::new(Vec::new())
            .validate(1)
            .unwrap_err()
            .contains("at least one phase"));
        let zero =
            WorkloadSchedule::new(vec![WorkloadPhase::new(0.0, vec![WorkloadTrace::idle()])]);
        assert!(zero.validate(1).unwrap_err().contains("zero-length"));
        let open_interior = WorkloadSchedule::new(vec![
            WorkloadPhase::new(f64::INFINITY, vec![WorkloadTrace::idle()]),
            WorkloadPhase::new(10.0, vec![WorkloadTrace::idle()]),
        ]);
        assert!(open_interior
            .validate(1)
            .unwrap_err()
            .contains("only the final phase"));
        let miscounted = WorkloadSchedule::single(vec![WorkloadTrace::idle()]);
        assert!(miscounted
            .validate(2)
            .unwrap_err()
            .contains("one trace per ONI"));
        let bad_trace = WorkloadSchedule::single(vec![WorkloadTrace::constant(-5.0)]);
        assert!(bad_trace.validate(1).unwrap_err().contains("baseline"));
        assert!(two_phase().validate(1).is_ok());
    }

    #[test]
    fn migration_and_diurnal_constructors_shape_their_phases() {
        let migration = WorkloadSchedule::migration(8, 500.0, &[1, 5], 200.0, 0.4);
        assert_eq!(migration.phase_count(), 2);
        assert!(migration.validate(8).is_ok());
        // The hot centre moves between the phases.
        assert!(migration.power_at(1, 0.0) > migration.power_at(5, 0.0));
        assert!(migration.power_at(5, 600.0) > migration.power_at(1, 600.0));

        let diurnal = WorkloadSchedule::diurnal(4, 1000.0, &[20.0, 120.0, 60.0]);
        assert_eq!(diurnal.phase_count(), 3);
        assert!(diurnal.validate(4).is_ok());
        assert!((diurnal.mean_power_mw(2, 500.0, 1500.0) - 70.0).abs() < 1e-12);
        // The final level holds past its stated duration.
        assert!((diurnal.power_at(0, 10_000.0) - 60.0).abs() < 1e-12);
    }
}
