//! Design-time thermal-aware wavelength-grid assignment (GLOW-style).
//!
//! The runtime machinery of this crate fights spectral detuning after the
//! fact: heaters cancel drift ([`ThermalTuner`]), barrel shifting re-maps a
//! whole bank by an integer number of grid slots
//! ([`crate::BankTuningMode::BarrelShift`]).  GLOW (Ding, Yu & Pan) observes
//! that the logical-wavelength → physical-ring mapping is *also* a synthesis
//! degree of freedom: once the per-ring fabrication offsets of a chip
//! instance are known (wafer test) and the expected operating temperature of
//! each ONI is known (the workload heat map), the assignment can be chosen
//! **at design time** so the rings land near their served wavelengths under
//! drift — before any runtime policy spends a microwatt.
//!
//! This module provides
//!
//! * [`WavelengthAssignment`] — a validated permutation mapping each logical
//!   wavelength (grid slot) to the physical ring that serves it, with the
//!   FSR-centred slot offset each mapping implies;
//! * [`AssignmentStrategy`] — greedy assignment, optionally refined by a
//!   seeded pairwise-swap local search;
//! * [`WavelengthAssigner`] — the search itself, driven by the predicted
//!   per-ring heater power of the [`ThermalTuner`] at a target bank state.
//!
//! The assigner is deterministic for a given `(seed, heat map, offsets)`
//! triple and **never returns an assignment worse than identity**: a
//! candidate is accepted only if its predicted total heater power does not
//! exceed the identity mapping's and its worst-ring predicted residual does
//! not grow.  Runtime barrel shifting composes on top — the shift search of
//! [`ThermalTuner::compensate_bank`] runs relative to the assigned mapping,
//! so a chip designed for its hot spot can still hop back when it runs cold.

use onoc_telemetry::{RecorderHandle, TelemetryEvent};
use serde::{Deserialize, Serialize};

use crate::bank::{fnv1a_seed, fnv1a_u64, BankCompensation, BankTuningMode, RingBankState};
use crate::tuning::ThermalTuner;
use onoc_units::KelvinDelta;

/// A design-time logical-wavelength → physical-ring mapping: entry `j` is
/// the ring serving grid slot `j`.  Always a permutation.
///
/// ```
/// use onoc_thermal::WavelengthAssignment;
///
/// let identity = WavelengthAssignment::identity(4);
/// assert!(identity.is_identity());
/// // A one-slot rotation: ring 3 serves slot 0 (wrapping through the FSR).
/// let rotated = WavelengthAssignment::new(vec![3, 0, 1, 2]).unwrap();
/// assert_eq!(rotated.ring_for_lane(0), 3);
/// assert_eq!(rotated.design_offset(1), 1);
/// assert!(WavelengthAssignment::new(vec![0, 0, 1, 2]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WavelengthAssignment {
    ring_for_lane: Vec<usize>,
}

impl WavelengthAssignment {
    /// The identity mapping of a `count`-ring bank: every ring serves its
    /// own design slot.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn identity(count: usize) -> Self {
        assert!(count > 0, "an assignment needs at least one wavelength");
        Self {
            ring_for_lane: (0..count).collect(),
        }
    }

    /// Wraps an explicit mapping (entry `j` = ring serving slot `j`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the mapping is empty or not a
    /// permutation of `0..len`.
    pub fn new(ring_for_lane: Vec<usize>) -> Result<Self, String> {
        let candidate = Self { ring_for_lane };
        candidate.validate()?;
        Ok(candidate)
    }

    /// Checks that the mapping is a non-empty permutation.
    ///
    /// # Errors
    ///
    /// Returns a description of the structural problem.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.ring_for_lane.len();
        if n == 0 {
            return Err("a wavelength assignment must cover at least one lane".into());
        }
        let mut seen = vec![false; n];
        for (lane, &ring) in self.ring_for_lane.iter().enumerate() {
            if ring >= n {
                return Err(format!(
                    "lane {lane} is assigned ring {ring}, outside the bank of {n} rings"
                ));
            }
            if seen[ring] {
                return Err(format!(
                    "ring {ring} is assigned to more than one lane; the mapping must be a \
                     permutation"
                ));
            }
            seen[ring] = true;
        }
        Ok(())
    }

    /// Number of wavelengths (= rings) the assignment covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring_for_lane.len()
    }

    /// `true` for an empty mapping (never produced by the constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring_for_lane.is_empty()
    }

    /// `true` when every ring serves its own design slot.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.ring_for_lane.iter().enumerate().all(|(j, &r)| j == r)
    }

    /// The physical ring serving grid slot `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn ring_for_lane(&self, lane: usize) -> usize {
        self.ring_for_lane[lane]
    }

    /// The FSR-centred slot offset the mapping imposes on `lane`: how many
    /// grid spacings the serving ring must move (positive = red shift)
    /// relative to its design slot, taking the shorter way around the free
    /// spectral range.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn design_offset(&self, lane: usize) -> i64 {
        fsr_centered_slots(lane, self.ring_for_lane[lane], self.ring_for_lane.len())
    }

    /// A 64-bit fingerprint of the exact mapping (FNV-1a over length and
    /// entries), mixed into `ThermalLinkStack::fingerprint` so memoized
    /// operating points solved under one assignment can never alias another.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a_u64(fnv1a_seed(), self.ring_for_lane.len() as u64);
        for &ring in &self.ring_for_lane {
            hash = fnv1a_u64(hash, ring as u64);
        }
        hash
    }
}

/// The FSR-centred slot offset of `ring` serving `lane` on a `count`-slot
/// grid: the shorter way around the free spectral range, positive = red
/// shift (the single source of the centring rule the assignment, the
/// assigner's cost model and the bank tuner all share).
pub(crate) fn fsr_centered_slots(lane: usize, ring: usize, count: usize) -> i64 {
    let n = count as i64;
    let d = (lane as i64 - ring as i64).rem_euclid(n);
    if 2 * d > n {
        d - n
    } else {
        d
    }
}

/// How the assigner searches the permutation space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AssignmentStrategy {
    /// The cheaper of the best pure rotation and one greedy matching pass
    /// (lanes in grid order, each picking the cheapest still-unassigned
    /// ring, ties to the lowest ring index).
    Greedy,
    /// The greedy result refined by a seeded pairwise-swap local search that
    /// runs until a full pass over the lane pairs finds no improving swap.
    #[default]
    GreedyRefine,
}

/// The design-time assigner: searches logical-wavelength → ring permutations
/// minimising the predicted total heater power of a bank at its target
/// operating state.
///
/// ```
/// use onoc_thermal::{
///     AssignmentStrategy, FabricationVariation, RingBankState, ThermalTuner, WavelengthAssigner,
/// };
/// use onoc_units::KelvinDelta;
///
/// let assigner = WavelengthAssigner {
///     tuner: ThermalTuner::paper_heater(),
///     grid_spacing_nm: 0.8,
///     slope_nm_per_kelvin: 0.1,
///     strategy: AssignmentStrategy::GreedyRefine,
///     seed: 7,
/// };
/// // 60 K above calibration: the assigner bakes a ~7–8 slot rotation in.
/// let state = RingBankState::new(
///     FabricationVariation::new(0.04, 3).offsets_nm(16),
///     KelvinDelta::new(60.0),
/// );
/// let assignment = assigner.assign(&state);
/// assert!(!assignment.is_identity());
/// let assigned = assigner.predicted_compensation(&state, &assignment);
/// let identity = assigner.predicted_compensation(&state, &onoc_thermal::WavelengthAssignment::identity(16));
/// assert!(assigned.total_heater_power().value() < 0.2 * identity.total_heater_power().value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WavelengthAssigner {
    /// Heater/controller model predicting the per-ring tuning cost.
    pub tuner: ThermalTuner,
    /// Grid spacing of the wavelength comb, in nm.
    pub grid_spacing_nm: f64,
    /// Ring drift slope, in nm/K (0 = athermal rings, assignment is moot).
    pub slope_nm_per_kelvin: f64,
    /// Search strategy.
    pub strategy: AssignmentStrategy,
    /// Seed of the refinement pass's pair-visit order.  A given
    /// `(seed, state)` pair always produces the same assignment.
    pub seed: u64,
}

impl WavelengthAssigner {
    /// Checks the spectral parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the grid spacing or drift slope
    /// is negative or not finite.
    pub fn validate(&self) -> Result<(), String> {
        for (name, value) in [
            ("grid spacing", self.grid_spacing_nm),
            ("drift slope", self.slope_nm_per_kelvin),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(format!(
                    "assigner {name} must be finite and non-negative, got {value}"
                ));
            }
        }
        Ok(())
    }

    /// Predicted per-ring heater power of `ring` serving `lane`, in µW —
    /// the greedy/refinement cost, using the same per-ring excursion
    /// ([`RingBankState::requested_excursion_k`]) the bank tuner fights.
    fn cost(&self, state: &RingBankState, ring: usize, lane: usize) -> f64 {
        let hop = fsr_centered_slots(lane, ring, state.ring_count());
        let requested =
            state.requested_excursion_k(ring, self.slope_nm_per_kelvin, self.grid_spacing_nm, hop);
        self.tuner
            .compensate(KelvinDelta::new(requested))
            .heater_power_per_ring
            .value()
    }

    /// The predicted bank compensation of `assignment` at the target state,
    /// under pure heating (the design-time cost model: runtime barrel
    /// shifting only helps further).
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not cover the bank or the assigner's
    /// parameters are invalid.
    #[must_use]
    pub fn predicted_compensation(
        &self,
        state: &RingBankState,
        assignment: &WavelengthAssignment,
    ) -> BankCompensation {
        self.tuner.compensate_bank_assigned(
            state,
            self.grid_spacing_nm,
            self.slope_nm_per_kelvin,
            BankTuningMode::PureHeater,
            Some(assignment),
        )
    }

    /// Searches an assignment for one bank at its target state.
    ///
    /// Deterministic: the same `(seed, offsets, excursion)` always produces
    /// the same permutation.  Guaranteed never worse than identity — the
    /// candidate is accepted only if its predicted total heater power does
    /// not exceed identity's and its worst-ring predicted residual does not
    /// grow; otherwise the identity mapping is returned.
    ///
    /// # Panics
    ///
    /// Panics if the assigner's parameters are invalid (see
    /// [`WavelengthAssigner::validate`]).
    #[must_use]
    pub fn assign(&self, state: &RingBankState) -> WavelengthAssignment {
        self.assign_traced(state, &RecorderHandle::none())
    }

    /// [`WavelengthAssigner::assign`] with search telemetry: every candidate
    /// evaluation (rotation scan, greedy matching, each refinement pass, the
    /// final never-worse-than-identity guard) emits one
    /// [`TelemetryEvent::AssignmentSearchStep`] carrying the candidate's
    /// predicted heater cost and whether it was adopted.  The returned
    /// assignment is identical to the untraced one.
    ///
    /// # Panics
    ///
    /// Panics if the assigner's parameters are invalid (see
    /// [`WavelengthAssigner::validate`]).
    #[must_use]
    pub fn assign_traced(
        &self,
        state: &RingBankState,
        recorder: &RecorderHandle,
    ) -> WavelengthAssignment {
        if let Err(reason) = self.validate() {
            panic!("invalid wavelength assigner: {reason}");
        }
        let n = state.ring_count();
        let identity = WavelengthAssignment::identity(n);
        // Athermal rings cannot be tuned onto other slots, and a degenerate
        // grid offers no slots to move between: assignment is a no-op.
        if n == 1 || self.slope_nm_per_kelvin == 0.0 || self.grid_spacing_nm == 0.0 {
            return identity;
        }

        // Cost matrix: heater power of ring r serving lane j, in µW.
        let costs: Vec<Vec<f64>> = (0..n)
            .map(|ring| (0..n).map(|lane| self.cost(state, ring, lane)).collect())
            .collect();
        let total = |ring_for_lane: &[usize]| -> f64 {
            ring_for_lane
                .iter()
                .enumerate()
                .map(|(lane, &ring)| costs[ring][lane])
                .sum()
        };

        // Candidate 1 — the best pure rotation (the common-mode answer a
        // barrel shift would also find, here baked in at design time).
        // Rotations are scanned outward from zero so ties land on the
        // smallest |k|.
        let rotation_of = |k: i64| -> Vec<usize> {
            (0..n)
                .map(|lane| {
                    usize::try_from((lane as i64 - k).rem_euclid(n as i64))
                        .expect("rem_euclid of a positive modulus is non-negative")
                })
                .collect()
        };
        let half = n as i64 / 2;
        let mut rotation = rotation_of(0);
        let mut rotation_cost = total(&rotation);
        for magnitude in 1..=half {
            for k in [magnitude, -magnitude] {
                if 2 * k > n as i64 || 2 * k <= -(n as i64) {
                    continue;
                }
                let candidate = rotation_of(k);
                let cost = total(&candidate);
                let accepted = cost < rotation_cost;
                recorder.emit(|| TelemetryEvent::AssignmentSearchStep {
                    stage: "rotation".to_owned(),
                    candidate_cost_uw: cost,
                    accepted,
                    swaps_applied: 0,
                });
                if accepted {
                    rotation = candidate;
                    rotation_cost = cost;
                }
            }
        }

        // Candidate 2 — greedy matching: lanes in grid order, each taking
        // the cheapest ring still available (ties to the lowest ring index).
        // Catches what a rigid rotation cannot (e.g. one far-outlier ring).
        let mut used = vec![false; n];
        let mut greedy = vec![0usize; n];
        for (lane, slot) in greedy.iter_mut().enumerate() {
            let mut best: Option<(f64, usize)> = None;
            for (ring, &taken) in used.iter().enumerate() {
                if taken {
                    continue;
                }
                let c = costs[ring][lane];
                if best.is_none_or(|(cost, _)| c < cost) {
                    best = Some((c, ring));
                }
            }
            let (_, ring) = best.expect("a free ring always remains");
            used[ring] = true;
            *slot = ring;
        }

        // Ties prefer the rotation: its structure is what the runtime
        // barrel-shift search composes with most cheaply.
        let greedy_cost = total(&greedy);
        let greedy_wins = greedy_cost < rotation_cost;
        recorder.emit(|| TelemetryEvent::AssignmentSearchStep {
            stage: "greedy".to_owned(),
            candidate_cost_uw: greedy_cost,
            accepted: greedy_wins,
            swaps_applied: 0,
        });
        let mut ring_for_lane = if greedy_wins { greedy } else { rotation };

        if self.strategy == AssignmentStrategy::GreedyRefine {
            self.refine(&costs, &mut ring_for_lane, recorder);
        }

        let candidate =
            WavelengthAssignment::new(ring_for_lane).expect("greedy output is a permutation");
        let assigned = self.predicted_compensation(state, &candidate);
        let baseline = self.predicted_compensation(state, &identity);
        let never_worse = assigned.total_heater_power().value()
            <= baseline.total_heater_power().value()
            && assigned.worst_residual().abs().nanometers()
                <= baseline.worst_residual().abs().nanometers() + 1e-12;
        recorder.emit(|| TelemetryEvent::AssignmentSearchStep {
            stage: "guard".to_owned(),
            candidate_cost_uw: assigned.total_heater_power().value(),
            accepted: never_worse,
            swaps_applied: 0,
        });
        if never_worse {
            candidate
        } else {
            identity
        }
    }

    /// Pairwise-swap local search: visit lane pairs in a seeded order,
    /// applying every strictly-improving swap, until a full pass finds none
    /// (bounded at 64 passes; each pass only ever lowers the total cost).
    fn refine(&self, costs: &[Vec<f64>], ring_for_lane: &mut [usize], recorder: &RecorderHandle) {
        let n = ring_for_lane.len();
        let mut pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
            .collect();
        // Deterministic SplitMix64 Fisher–Yates: the seed fixes the visit
        // order, the visit order fixes the result.
        let mut rng = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            crate::bank::splitmix64_mix(rng)
        };
        for i in (1..pairs.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            pairs.swap(i, j);
        }
        for _ in 0..64 {
            let mut swaps_applied = 0u64;
            for &(a, b) in &pairs {
                let (ra, rb) = (ring_for_lane[a], ring_for_lane[b]);
                let current = costs[ra][a] + costs[rb][b];
                let swapped = costs[rb][a] + costs[ra][b];
                if swapped < current {
                    ring_for_lane[a] = rb;
                    ring_for_lane[b] = ra;
                    swaps_applied += 1;
                }
            }
            recorder.emit(|| TelemetryEvent::AssignmentSearchStep {
                stage: "refine-pass".to_owned(),
                candidate_cost_uw: ring_for_lane
                    .iter()
                    .enumerate()
                    .map(|(lane, &ring)| costs[ring][lane])
                    .sum(),
                accepted: swaps_applied > 0,
                swaps_applied,
            });
            if swaps_applied == 0 {
                break;
            }
        }
    }

    /// Assigns a whole fleet: one permutation per bank state (the per-ONI
    /// heat map × chip instances of a scenario).
    #[must_use]
    pub fn assign_fleet(&self, states: &[RingBankState]) -> Vec<WavelengthAssignment> {
        self.assign_fleet_traced(states, &RecorderHandle::none())
    }

    /// [`WavelengthAssigner::assign_fleet`] with per-candidate search
    /// telemetry (see [`WavelengthAssigner::assign_traced`]).
    #[must_use]
    pub fn assign_fleet_traced(
        &self,
        states: &[RingBankState],
        recorder: &RecorderHandle,
    ) -> Vec<WavelengthAssignment> {
        states
            .iter()
            .map(|state| self.assign_traced(state, recorder))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::FabricationVariation;

    fn assigner(strategy: AssignmentStrategy) -> WavelengthAssigner {
        WavelengthAssigner {
            tuner: ThermalTuner::paper_heater(),
            grid_spacing_nm: 0.8,
            slope_nm_per_kelvin: 0.1,
            strategy,
            seed: 7,
        }
    }

    #[test]
    fn identity_construction_and_offsets() {
        let a = WavelengthAssignment::identity(8);
        assert_eq!(a.len(), 8);
        assert!(a.is_identity());
        assert!(!a.is_empty());
        for lane in 0..8 {
            assert_eq!(a.ring_for_lane(lane), lane);
            assert_eq!(a.design_offset(lane), 0);
        }
    }

    #[test]
    fn rotations_take_the_short_way_round_the_fsr() {
        // Ring (j − 1) mod 4 serves lane j: every ring moves +1 slot.
        let a = WavelengthAssignment::new(vec![3, 0, 1, 2]).unwrap();
        for lane in 0..4 {
            assert_eq!(a.design_offset(lane), 1, "lane {lane}");
        }
        // The inverse rotation moves −1, not +3.
        let b = WavelengthAssignment::new(vec![1, 2, 3, 0]).unwrap();
        for lane in 0..4 {
            assert_eq!(b.design_offset(lane), -1, "lane {lane}");
        }
    }

    #[test]
    fn invalid_mappings_are_rejected() {
        assert!(WavelengthAssignment::new(vec![]).is_err());
        assert!(WavelengthAssignment::new(vec![0, 0]).is_err());
        assert!(WavelengthAssignment::new(vec![0, 5]).is_err());
        assert!(WavelengthAssignment::new(vec![1, 0]).is_ok());
    }

    #[test]
    fn fingerprints_separate_distinct_assignments() {
        let a = WavelengthAssignment::identity(16);
        let b =
            WavelengthAssignment::new(vec![15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14])
                .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.fingerprint(),
            WavelengthAssignment::identity(16).fingerprint()
        );
        assert_ne!(
            WavelengthAssignment::identity(8).fingerprint(),
            WavelengthAssignment::identity(16).fingerprint()
        );
    }

    #[test]
    fn cold_uniform_bank_keeps_the_identity() {
        let state = RingBankState::aligned(16);
        for strategy in [AssignmentStrategy::Greedy, AssignmentStrategy::GreedyRefine] {
            assert!(assigner(strategy).assign(&state).is_identity());
        }
    }

    #[test]
    fn hot_bank_bakes_the_rotation_in() {
        // 60 K = 6 nm = 7.5 grid spacings: the assigned rings sit 7–8 slots
        // behind their lanes, leaving only a sub-spacing residual.
        let state = RingBankState::new(vec![0.0; 16], KelvinDelta::new(60.0));
        let assignment = assigner(AssignmentStrategy::Greedy).assign(&state);
        assert!(!assignment.is_identity());
        for lane in 0..16 {
            let offset = assignment.design_offset(lane);
            assert!(offset == 7 || offset == 8, "lane {lane}: offset {offset}");
        }
        let a = assigner(AssignmentStrategy::Greedy);
        let assigned = a.predicted_compensation(&state, &assignment);
        let identity = a.predicted_compensation(&state, &WavelengthAssignment::identity(16));
        assert!(
            assigned.total_heater_power().value() < 0.2 * identity.total_heater_power().value()
        );
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        let state = RingBankState::new(
            FabricationVariation::new(0.08, 11).offsets_nm(16),
            KelvinDelta::new(44.0),
        );
        for strategy in [AssignmentStrategy::Greedy, AssignmentStrategy::GreedyRefine] {
            let a = assigner(strategy).assign(&state);
            let b = assigner(strategy).assign(&state);
            assert_eq!(a, b, "{strategy:?}");
        }
    }

    #[test]
    fn refinement_never_costs_more_than_greedy() {
        for seed in 0..6u64 {
            for dt in [0.0, 12.0, 31.0, 60.0] {
                let state = RingBankState::new(
                    FabricationVariation::new(0.08, seed).offsets_nm(16),
                    KelvinDelta::new(dt),
                );
                let greedy = assigner(AssignmentStrategy::Greedy);
                let refined = assigner(AssignmentStrategy::GreedyRefine);
                let g = greedy.predicted_compensation(&state, &greedy.assign(&state));
                let r = refined.predicted_compensation(&state, &refined.assign(&state));
                assert!(
                    r.total_heater_power().value() <= g.total_heater_power().value() + 1e-9,
                    "seed {seed}, ΔT {dt}"
                );
            }
        }
    }

    #[test]
    fn never_worse_than_identity_guard_holds() {
        for seed in 0..8u64 {
            for dt in [-24.0, 0.0, 3.9, 44.0, 85.0] {
                let state = RingBankState::new(
                    FabricationVariation::new(0.06, seed).offsets_nm(16),
                    KelvinDelta::new(dt),
                );
                let a = assigner(AssignmentStrategy::GreedyRefine);
                let assignment = a.assign(&state);
                let assigned = a.predicted_compensation(&state, &assignment);
                let identity =
                    a.predicted_compensation(&state, &WavelengthAssignment::identity(16));
                assert!(
                    assigned.total_heater_power().value() <= identity.total_heater_power().value(),
                    "seed {seed}, ΔT {dt}"
                );
                assert!(
                    assigned.worst_residual().abs().nanometers()
                        <= identity.worst_residual().abs().nanometers() + 1e-12,
                    "seed {seed}, ΔT {dt}"
                );
            }
        }
    }

    #[test]
    fn athermal_or_gridless_banks_stay_on_identity() {
        let state = RingBankState::new(vec![0.05, -0.03], KelvinDelta::new(40.0));
        let mut a = assigner(AssignmentStrategy::GreedyRefine);
        a.slope_nm_per_kelvin = 0.0;
        assert!(a.assign(&state).is_identity());
        let mut b = assigner(AssignmentStrategy::GreedyRefine);
        b.grid_spacing_nm = 0.0;
        assert!(b.assign(&state).is_identity());
    }

    #[test]
    fn invalid_assigner_parameters_are_rejected() {
        let mut a = assigner(AssignmentStrategy::Greedy);
        a.grid_spacing_nm = f64::NAN;
        assert!(a.validate().unwrap_err().contains("grid spacing"));
        let mut b = assigner(AssignmentStrategy::Greedy);
        b.slope_nm_per_kelvin = -0.1;
        assert!(b.validate().unwrap_err().contains("drift slope"));
    }

    #[test]
    fn fleet_assignment_is_per_bank() {
        let cold = RingBankState::aligned(16);
        let hot = RingBankState::new(vec![0.0; 16], KelvinDelta::new(60.0));
        let fleet = assigner(AssignmentStrategy::Greedy).assign_fleet(&[cold, hot]);
        assert_eq!(fleet.len(), 2);
        assert!(fleet[0].is_identity());
        assert!(!fleet[1].is_identity());
    }
}
