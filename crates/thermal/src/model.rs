//! The unified thermal substrate of a simulation: the [`ThermalModel`]
//! trait, its three implementations, and the serializable
//! [`ThermalModelSpec`] a scenario configuration carries.
//!
//! Before this module the workspace had two incompatible ways of producing a
//! temperature per ONI: the *prescribed* [`ThermalEnvironment`] traces
//! (sampled at arbitrary instants, blind to what the link dissipates) and
//! the *activity-coupled* [`ActivityCoupledEnvironment`] RC network (driven
//! by deposited power, stepped epoch by epoch).  The trait unifies them
//! behind one stepping contract so a single simulation engine can drive
//! either — and adds the third family neither could express:
//!
//! * [`PrescribedEnvironment`] — a [`ThermalEnvironment`] bound to an ONI
//!   count and a clock; deposited power is ignored;
//! * [`ActivityCoupledEnvironment`] — the per-ONI RC network heated solely
//!   by the link's own dissipation;
//! * [`WorkloadHeatedEnvironment`] — the RC network with per-ONI
//!   *compute-cluster* heat-injection traces superimposed on the link's
//!   dissipation: a hot accelerator under one corner of the interposer
//!   warms the channels near it while the link's own power still closes the
//!   feedback loop.
//!
//! The contract is deliberately minimal: a model knows how many ONIs it
//! covers, reports the current temperature of each, and advances by a time
//! step during which the simulator deposited a given electrical power into
//! each node.  Prescribed models simply move their clock.

use onoc_units::Celsius;
use serde::{Deserialize, Serialize};

use crate::activity::{ActivityCoupledEnvironment, RcNetworkParameters};
use crate::environment::ThermalEnvironment;
use crate::schedule::WorkloadSchedule;

/// A stepped temperature field over the ONIs: the single substrate the NoC
/// simulator's epoch engine drives, whatever physics produces the
/// temperatures.
///
/// Time only moves through [`ThermalModel::advance`]; temperatures are read
/// *between* steps.  `advance` receives the electrical power the simulator
/// deposited into each node over the step — activity-coupled models
/// integrate it, prescribed models ignore it.
///
/// `Send + Sync` are supertraits so simulation engines can read
/// temperatures from sharded per-ONI workers between steps.
pub trait ThermalModel: std::fmt::Debug + Send + Sync {
    /// Number of ONIs the model covers.
    fn oni_count(&self) -> usize;

    /// Current temperature of node `oni`.
    ///
    /// # Panics
    ///
    /// Panics if `oni` is out of range.
    fn temperature_of(&self, oni: usize) -> Celsius;

    /// Advances the model by `dt_ns` nanoseconds with `deposited_power_mw`
    /// milliwatts of link dissipation per node over that interval.
    ///
    /// # Panics
    ///
    /// Panics if `deposited_power_mw` does not carry one entry per node or
    /// `dt_ns` is negative or not finite.
    fn advance(&mut self, deposited_power_mw: &[f64], dt_ns: f64);

    /// Whether deposited power influences the temperatures (`true` for the
    /// RC-network models, `false` for prescribed traces).
    fn is_activity_coupled(&self) -> bool;
}

/// A prescribed [`ThermalEnvironment`] bound to an ONI count and a clock:
/// the [`ThermalModel`] adapter for uniform/hotspot/transient traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrescribedEnvironment {
    environment: ThermalEnvironment,
    oni_count: usize,
    time_ns: f64,
}

impl PrescribedEnvironment {
    /// Binds `environment` to `oni_count` ONIs with the clock at zero.
    ///
    /// # Panics
    ///
    /// Panics if `oni_count` is zero or the environment is invalid (see
    /// [`ThermalEnvironment::validate`]).
    #[must_use]
    pub fn new(environment: ThermalEnvironment, oni_count: usize) -> Self {
        assert!(oni_count > 0, "at least one ONI is required");
        environment
            .validate()
            .unwrap_or_else(|reason| panic!("invalid thermal environment: {reason}"));
        Self {
            environment,
            oni_count,
            time_ns: 0.0,
        }
    }

    /// The wrapped environment.
    #[must_use]
    pub fn environment(&self) -> &ThermalEnvironment {
        &self.environment
    }

    /// Current simulated time, in nanoseconds.
    #[must_use]
    pub fn time_ns(&self) -> f64 {
        self.time_ns
    }
}

impl ThermalModel for PrescribedEnvironment {
    fn oni_count(&self) -> usize {
        self.oni_count
    }

    fn temperature_of(&self, oni: usize) -> Celsius {
        self.environment
            .temperature_at(oni, self.oni_count, self.time_ns)
    }

    fn advance(&mut self, deposited_power_mw: &[f64], dt_ns: f64) {
        assert_eq!(
            deposited_power_mw.len(),
            self.oni_count,
            "one power entry per ONI is required"
        );
        assert!(
            dt_ns >= 0.0 && dt_ns.is_finite(),
            "step duration must be non-negative and finite"
        );
        self.time_ns += dt_ns;
    }

    fn is_activity_coupled(&self) -> bool {
        false
    }
}

impl ThermalModel for ActivityCoupledEnvironment {
    fn oni_count(&self) -> usize {
        self.oni_count()
    }

    fn temperature_of(&self, oni: usize) -> Celsius {
        self.temperature_of(oni)
    }

    fn advance(&mut self, deposited_power_mw: &[f64], dt_ns: f64) {
        self.step(deposited_power_mw, dt_ns);
    }

    fn is_activity_coupled(&self) -> bool {
        true
    }
}

/// The compute-cluster heat a workload injects into one ONI's node over
/// time: a steady baseline plus one burst window, both in milliwatts.
///
/// The trace is analytic, so an epoch of any length integrates it exactly:
/// [`WorkloadTrace::mean_power_mw`] returns the time-average over an
/// arbitrary interval with no sampling error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Steady injected power, in mW (the always-on share of the cluster).
    pub baseline_mw: f64,
    /// Additional power during the burst window, in mW.
    pub burst_mw: f64,
    /// Burst window start, in nanoseconds.
    pub burst_start_ns: f64,
    /// Burst window end, in nanoseconds (`f64::INFINITY` for an open-ended
    /// burst).
    pub burst_stop_ns: f64,
}

impl WorkloadTrace {
    /// A node that receives no workload heat.
    #[must_use]
    pub fn idle() -> Self {
        Self::constant(0.0)
    }

    /// A steady `power_mw` injection with no burst.
    #[must_use]
    pub fn constant(power_mw: f64) -> Self {
        Self {
            baseline_mw: power_mw,
            burst_mw: 0.0,
            burst_start_ns: 0.0,
            burst_stop_ns: 0.0,
        }
    }

    /// A `power_mw` burst over `[start_ns, stop_ns)` on top of a zero
    /// baseline.
    #[must_use]
    pub fn burst(power_mw: f64, start_ns: f64, stop_ns: f64) -> Self {
        Self {
            baseline_mw: 0.0,
            burst_mw: power_mw,
            burst_start_ns: start_ns,
            burst_stop_ns: stop_ns,
        }
    }

    /// Instantaneous injected power at `time_ns`, in mW.
    #[must_use]
    pub fn power_at(&self, time_ns: f64) -> f64 {
        let bursting = time_ns >= self.burst_start_ns && time_ns < self.burst_stop_ns;
        self.baseline_mw + if bursting { self.burst_mw } else { 0.0 }
    }

    /// Exact time-average of the injected power over `[from_ns, to_ns]`, in
    /// mW (equal to [`WorkloadTrace::power_at`] for a degenerate interval).
    ///
    /// # Panics
    ///
    /// Panics if the interval is inverted (`from_ns > to_ns`) — an inverted
    /// interval is always a caller bug (a negative epoch span), and silently
    /// answering with the instantaneous power would hide it.
    #[must_use]
    pub fn mean_power_mw(&self, from_ns: f64, to_ns: f64) -> f64 {
        assert!(
            from_ns.partial_cmp(&to_ns) != Some(std::cmp::Ordering::Greater),
            "workload power interval must not be inverted, got [{from_ns}, {to_ns}]"
        );
        let span = to_ns - from_ns;
        if span <= 0.0 {
            return self.power_at(from_ns);
        }
        let overlap = (to_ns.min(self.burst_stop_ns) - from_ns.max(self.burst_start_ns)).max(0.0);
        self.baseline_mw + self.burst_mw * (overlap.min(span) / span)
    }

    /// Checks the trace.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a power is negative or not
    /// finite, or the burst window is malformed.
    pub fn validate(&self) -> Result<(), String> {
        for (name, value) in [
            ("workload baseline power", self.baseline_mw),
            ("workload burst power", self.burst_mw),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(format!(
                    "{name} must be non-negative and finite, got {value}"
                ));
            }
        }
        if self.burst_start_ns.is_nan() || self.burst_stop_ns.is_nan() {
            return Err("workload burst window must not be NaN".into());
        }
        if self.burst_stop_ns < self.burst_start_ns {
            return Err(format!(
                "workload burst window must not end before it starts, got [{}, {})",
                self.burst_start_ns, self.burst_stop_ns
            ));
        }
        if self.burst_mw > 0.0 && self.burst_stop_ns == self.burst_start_ns {
            return Err(format!(
                "workload burst window [{0}, {0}) is zero-length and can never fire; \
                 set burst_mw to zero for a steady trace",
                self.burst_start_ns
            ));
        }
        Ok(())
    }

    /// The per-ONI traces of a hot compute cluster centred at ONI `center`
    /// of `oni_count`: `peak_mw` of steady injection at the centre, decaying
    /// geometrically with ring-topology hop distance (mirroring
    /// [`ThermalEnvironment::Hotspot`]'s spatial shape, but as *power in*
    /// rather than temperature prescribed).
    ///
    /// # Panics
    ///
    /// Panics if `oni_count` is zero or `decay_per_hop` is outside `[0, 1)`.
    #[must_use]
    pub fn hot_cluster(
        oni_count: usize,
        center: usize,
        peak_mw: f64,
        decay_per_hop: f64,
    ) -> Vec<Self> {
        assert!(oni_count > 0, "at least one ONI is required");
        assert!(
            (0.0..1.0).contains(&decay_per_hop),
            "cluster decay per hop must be in [0, 1)"
        );
        let center = center % oni_count;
        (0..oni_count)
            .map(|oni| {
                let direct = oni.abs_diff(center);
                let hops = direct.min(oni_count - direct);
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                Self::constant(peak_mw * decay_per_hop.powi(hops as i32))
            })
            .collect()
    }
}

/// The RC network of [`ActivityCoupledEnvironment`] with per-ONI workload
/// heat-injection traces superimposed on the link's own dissipation: the
/// model for spatially non-uniform *workload* heating that still closes the
/// electro-thermal feedback loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadHeatedEnvironment {
    network: ActivityCoupledEnvironment,
    traces: Vec<WorkloadTrace>,
    time_ns: f64,
}

impl WorkloadHeatedEnvironment {
    /// Creates the network with one workload trace per ONI, every node at
    /// the package ambient and the clock at zero.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty, a trace is invalid (see
    /// [`WorkloadTrace::validate`]) or the network parameters are invalid.
    #[must_use]
    pub fn new(parameters: RcNetworkParameters, traces: Vec<WorkloadTrace>) -> Self {
        assert!(!traces.is_empty(), "at least one ONI is required");
        for (oni, trace) in traces.iter().enumerate() {
            trace
                .validate()
                .unwrap_or_else(|reason| panic!("invalid workload trace for ONI {oni}: {reason}"));
        }
        Self {
            network: ActivityCoupledEnvironment::new(traces.len(), parameters),
            traces,
            time_ns: 0.0,
        }
    }

    /// The underlying RC network.
    #[must_use]
    pub fn network(&self) -> &ActivityCoupledEnvironment {
        &self.network
    }

    /// The per-ONI workload traces.
    #[must_use]
    pub fn traces(&self) -> &[WorkloadTrace] {
        &self.traces
    }

    /// Current simulated time, in nanoseconds.
    #[must_use]
    pub fn time_ns(&self) -> f64 {
        self.time_ns
    }
}

impl ThermalModel for WorkloadHeatedEnvironment {
    fn oni_count(&self) -> usize {
        self.network.oni_count()
    }

    fn temperature_of(&self, oni: usize) -> Celsius {
        self.network.temperature_of(oni)
    }

    fn advance(&mut self, deposited_power_mw: &[f64], dt_ns: f64) {
        assert_eq!(
            deposited_power_mw.len(),
            self.traces.len(),
            "one power entry per ONI is required"
        );
        let to_ns = self.time_ns + dt_ns;
        let powers: Vec<f64> = deposited_power_mw
            .iter()
            .zip(&self.traces)
            .map(|(&link_mw, trace)| link_mw + trace.mean_power_mw(self.time_ns, to_ns))
            .collect();
        self.network.step(&powers, dt_ns);
        self.time_ns = to_ns;
    }

    fn is_activity_coupled(&self) -> bool {
        true
    }
}

/// The RC network driven by a piecewise [`WorkloadSchedule`] superimposed
/// on the link's own dissipation: the [`WorkloadHeatedEnvironment`] of a
/// *scheduled* workload.  DVFS phase steps, task migration between clusters
/// and diurnal curves all play through this one model; within any single
/// phase it integrates exactly like the plain workload-heated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledWorkloadEnvironment {
    network: ActivityCoupledEnvironment,
    schedule: WorkloadSchedule,
    time_ns: f64,
}

impl ScheduledWorkloadEnvironment {
    /// Creates the network over `schedule` (whose phases fix the ONI
    /// count), every node at the package ambient and the clock at zero.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid (see
    /// [`WorkloadSchedule::validate`]) or the network parameters are
    /// invalid.
    #[must_use]
    pub fn new(parameters: RcNetworkParameters, schedule: WorkloadSchedule) -> Self {
        assert!(
            !schedule.phases.is_empty(),
            "a workload schedule needs at least one phase"
        );
        let oni_count = schedule.phases[0].traces.len();
        schedule
            .validate(oni_count)
            .unwrap_or_else(|reason| panic!("invalid workload schedule: {reason}"));
        Self {
            network: ActivityCoupledEnvironment::new(oni_count, parameters),
            schedule,
            time_ns: 0.0,
        }
    }

    /// The underlying RC network.
    #[must_use]
    pub fn network(&self) -> &ActivityCoupledEnvironment {
        &self.network
    }

    /// The workload schedule being played.
    #[must_use]
    pub fn schedule(&self) -> &WorkloadSchedule {
        &self.schedule
    }

    /// Current simulated time, in nanoseconds.
    #[must_use]
    pub fn time_ns(&self) -> f64 {
        self.time_ns
    }
}

impl ThermalModel for ScheduledWorkloadEnvironment {
    fn oni_count(&self) -> usize {
        self.network.oni_count()
    }

    fn temperature_of(&self, oni: usize) -> Celsius {
        self.network.temperature_of(oni)
    }

    fn advance(&mut self, deposited_power_mw: &[f64], dt_ns: f64) {
        assert_eq!(
            deposited_power_mw.len(),
            self.network.oni_count(),
            "one power entry per ONI is required"
        );
        let to_ns = self.time_ns + dt_ns;
        let powers: Vec<f64> = deposited_power_mw
            .iter()
            .enumerate()
            .map(|(oni, &link_mw)| link_mw + self.schedule.mean_power_mw(oni, self.time_ns, to_ns))
            .collect();
        self.network.step(&powers, dt_ns);
        self.time_ns = to_ns;
    }

    fn is_activity_coupled(&self) -> bool {
        true
    }
}

/// Why a [`ThermalModelSpec`] design-time query could not be answered:
/// the typed form of [`ThermalModelSpec::validate`]'s failure, so library
/// callers (the scenario builder's design-assignment path) can propagate it
/// instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThermalModelError {
    /// The spec cannot describe a model for the requested ONI count.
    InvalidSpec {
        /// Human-readable reason, matching [`ThermalModelSpec::validate`].
        reason: String,
    },
}

impl std::fmt::Display for ThermalModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidSpec { reason } => write!(f, "invalid thermal model spec: {reason}"),
        }
    }
}

impl std::error::Error for ThermalModelError {}

/// The serializable description of a [`ThermalModel`]: what a scenario
/// configuration carries, instantiated into the stateful model when the run
/// starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThermalModelSpec {
    /// A prescribed temperature trace (uniform / hotspot / transient).
    Prescribed {
        /// The temperature field over the ONIs.
        environment: ThermalEnvironment,
    },
    /// The per-ONI RC network heated by the link's own dissipation.
    ActivityCoupled {
        /// Physical parameters of the RC network.
        network: RcNetworkParameters,
    },
    /// The RC network with per-ONI workload heat injection superimposed.
    WorkloadHeated {
        /// Physical parameters of the RC network.
        network: RcNetworkParameters,
        /// One heat-injection trace per ONI.
        traces: Vec<WorkloadTrace>,
    },
    /// The RC network driven by a piecewise workload schedule (DVFS phases,
    /// task migration, diurnal curves) superimposed on link dissipation.
    WorkloadScheduled {
        /// Physical parameters of the RC network.
        network: RcNetworkParameters,
        /// The phased workload played over the run.
        schedule: WorkloadSchedule,
    },
}

impl ThermalModelSpec {
    /// The paper's fixed evaluation point: a prescribed uniform 25 °C.
    #[must_use]
    pub fn paper_ambient() -> Self {
        Self::Prescribed {
            environment: ThermalEnvironment::paper_ambient(),
        }
    }

    /// Whether the described model feeds deposited power back into its
    /// temperatures.
    #[must_use]
    pub fn is_activity_coupled(&self) -> bool {
        !matches!(self, Self::Prescribed { .. })
    }

    /// Checks the spec against the scenario's ONI count.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the wrapped environment, network
    /// or traces are invalid, or a workload spec does not carry exactly one
    /// trace per ONI.
    pub fn validate(&self, oni_count: usize) -> Result<(), String> {
        match self {
            Self::Prescribed { environment } => environment.validate(),
            Self::ActivityCoupled { network } => network.validate(),
            Self::WorkloadHeated { network, traces } => {
                network.validate()?;
                if traces.len() != oni_count {
                    return Err(format!(
                        "workload heating needs one trace per ONI: got {} traces for {} ONIs",
                        traces.len(),
                        oni_count
                    ));
                }
                for trace in traces {
                    trace.validate()?;
                }
                Ok(())
            }
            Self::WorkloadScheduled { network, schedule } => {
                network.validate()?;
                schedule.validate(oni_count)
            }
        }
    }

    /// The per-ONI *design-point* temperatures of the described model: what
    /// a design-time optimiser (e.g. the GLOW-style wavelength assigner)
    /// should plan each ONI's channel for.
    ///
    /// * prescribed uniform/hotspot fields report their static per-ONI
    ///   temperatures (sampled at `t = 0`);
    /// * a prescribed transient reports its asymptotic target everywhere —
    ///   the temperature the package settles at;
    /// * the activity-coupled network reports its package ambient (the
    ///   link's own dissipation is a runtime quantity the design step cannot
    ///   know up front);
    /// * the workload-heated network reports the steady state its workload
    ///   traces alone drive it to: the model is advanced 40 time constants
    ///   with zero link power and sampled, so lateral spreading through the
    ///   interposer is included exactly as the runtime model sees it;
    /// * the workload-scheduled network reports, per ONI, the **worst case
    ///   over its phases** — the hottest each node gets across every
    ///   phase's steady-state map.  A single assignment designed against
    ///   this map is safe in every phase, at the price per-phase
    ///   assignments ([`ThermalModelSpec::phase_design_temperatures`])
    ///   avoid.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalModelError::InvalidSpec`] when the spec is invalid
    /// for `oni_count` ONIs (see [`ThermalModelSpec::validate`]).
    pub fn design_temperatures(&self, oni_count: usize) -> Result<Vec<Celsius>, ThermalModelError> {
        let maps = self.phase_design_temperatures(oni_count)?;
        let mut iter = maps.into_iter();
        let mut worst = iter
            .next()
            .unwrap_or_else(|| unreachable!("a validated spec has at least one design map"));
        for map in iter {
            for (seen, candidate) in worst.iter_mut().zip(map) {
                if candidate > *seen {
                    *seen = candidate;
                }
            }
        }
        Ok(worst)
    }

    /// The per-ONI design-point temperatures of **each phase** of the
    /// described model: one heat map per schedule phase for
    /// [`ThermalModelSpec::WorkloadScheduled`] (each phase's traces alone,
    /// advanced 40 time constants in phase-relative time with zero link
    /// power — exactly the [`ThermalModelSpec::WorkloadHeated`] design
    /// computation applied per phase), and a single map (equal to
    /// [`ThermalModelSpec::design_temperatures`]) for every unscheduled
    /// family.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalModelError::InvalidSpec`] when the spec is invalid
    /// for `oni_count` ONIs (see [`ThermalModelSpec::validate`]).
    pub fn phase_design_temperatures(
        &self,
        oni_count: usize,
    ) -> Result<Vec<Vec<Celsius>>, ThermalModelError> {
        self.validate(oni_count)
            .map_err(|reason| ThermalModelError::InvalidSpec { reason })?;
        Ok(match self {
            Self::Prescribed { environment } => vec![match *environment {
                ThermalEnvironment::Transient { target, .. } => vec![target; oni_count],
                _ => (0..oni_count)
                    .map(|oni| environment.temperature_at(oni, oni_count, 0.0))
                    .collect(),
            }],
            Self::ActivityCoupled { network } => vec![vec![network.ambient; oni_count]],
            Self::WorkloadHeated { network, traces } => {
                vec![steady_workload_map(*network, traces.clone(), oni_count)]
            }
            Self::WorkloadScheduled { network, schedule } => schedule
                .phases
                .iter()
                .map(|phase| steady_workload_map(*network, phase.traces.clone(), oni_count))
                .collect(),
        })
    }

    /// Builds the stateful model for `oni_count` ONIs, with prescribed
    /// clocks at zero and RC nodes at their package ambient.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`ThermalModelSpec::validate`]).
    #[must_use]
    pub fn instantiate(&self, oni_count: usize) -> Box<dyn ThermalModel> {
        self.validate(oni_count)
            .unwrap_or_else(|reason| panic!("invalid thermal model spec: {reason}"));
        match self {
            Self::Prescribed { environment } => {
                Box::new(PrescribedEnvironment::new(*environment, oni_count))
            }
            Self::ActivityCoupled { network } => {
                Box::new(ActivityCoupledEnvironment::new(oni_count, *network))
            }
            Self::WorkloadHeated { network, traces } => {
                Box::new(WorkloadHeatedEnvironment::new(*network, traces.clone()))
            }
            Self::WorkloadScheduled { network, schedule } => Box::new(
                ScheduledWorkloadEnvironment::new(*network, schedule.clone()),
            ),
        }
    }
}

/// The steady state the given workload traces alone drive the RC network
/// to: advanced 40 time constants with zero link power and sampled — the
/// shared design-map computation of the workload-heated and
/// workload-scheduled families.
fn steady_workload_map(
    network: RcNetworkParameters,
    traces: Vec<WorkloadTrace>,
    oni_count: usize,
) -> Vec<Celsius> {
    let mut model = WorkloadHeatedEnvironment::new(network, traces);
    model.advance(&vec![0.0; oni_count], network.time_constant_ns() * 40.0);
    (0..oni_count)
        .map(|oni| ThermalModel::temperature_of(&model, oni))
        .collect()
}

impl Default for ThermalModelSpec {
    fn default() -> Self {
        Self::paper_ambient()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prescribed_model_plays_its_clock_and_ignores_power() {
        let mut model = PrescribedEnvironment::new(
            ThermalEnvironment::Transient {
                start: Celsius::new(25.0),
                target: Celsius::new(85.0),
                time_constant_ns: 1000.0,
            },
            4,
        );
        assert_eq!(ThermalModel::oni_count(&model), 4);
        assert!(!model.is_activity_coupled());
        assert!((ThermalModel::temperature_of(&model, 0).value() - 25.0).abs() < 1e-12);
        // Huge deposited power changes nothing; only the clock moves.
        model.advance(&[1e6; 4], 1000.0);
        let one_tau = ThermalModel::temperature_of(&model, 0).value();
        assert!((one_tau - (85.0 - 60.0 * (-1.0f64).exp())).abs() < 1e-9);
        assert!((model.time_ns() - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn activity_coupled_model_integrates_power_through_the_trait() {
        let params = RcNetworkParameters::paper_package();
        let mut boxed: Box<dyn ThermalModel> = Box::new(ActivityCoupledEnvironment::new(1, params));
        assert!(boxed.is_activity_coupled());
        boxed.advance(&[200.0], params.time_constant_ns() * 40.0);
        let expected = 25.0 + params.steady_state_excess_k(200.0);
        assert!((boxed.temperature_of(0).value() - expected).abs() < 0.05);
    }

    #[test]
    fn workload_traces_average_exactly() {
        let trace = WorkloadTrace {
            baseline_mw: 10.0,
            burst_mw: 100.0,
            burst_start_ns: 50.0,
            burst_stop_ns: 150.0,
        };
        assert!((trace.power_at(0.0) - 10.0).abs() < 1e-12);
        assert!((trace.power_at(100.0) - 110.0).abs() < 1e-12);
        assert!((trace.power_at(150.0) - 10.0).abs() < 1e-12);
        // Full overlap, half overlap, no overlap.
        assert!((trace.mean_power_mw(50.0, 150.0) - 110.0).abs() < 1e-12);
        assert!((trace.mean_power_mw(0.0, 100.0) - 60.0).abs() < 1e-12);
        assert!((trace.mean_power_mw(200.0, 300.0) - 10.0).abs() < 1e-12);
        // Degenerate interval falls back to the instantaneous power.
        assert!((trace.mean_power_mw(100.0, 100.0) - 110.0).abs() < 1e-12);
        // Open-ended bursts integrate too.
        let open = WorkloadTrace {
            burst_stop_ns: f64::INFINITY,
            ..trace
        };
        assert!((open.mean_power_mw(50.0, 150.0) - 110.0).abs() < 1e-12);
        assert!(open.validate().is_ok());
    }

    #[test]
    fn workload_heating_warms_the_cluster_without_any_link_power() {
        let params = RcNetworkParameters::paper_package();
        let traces = WorkloadTrace::hot_cluster(8, 2, 300.0, 0.4);
        let mut model = WorkloadHeatedEnvironment::new(params, traces);
        assert_eq!(ThermalModel::oni_count(&model), 8);
        assert!(model.is_activity_coupled());
        model.advance(&[0.0; 8], params.time_constant_ns() * 40.0);
        let centre = ThermalModel::temperature_of(&model, 2).value();
        let near = ThermalModel::temperature_of(&model, 3).value();
        let far = ThermalModel::temperature_of(&model, 6).value();
        assert!(centre > near && near > far, "{centre} / {near} / {far}");
        assert!(far > 25.0, "spreading reaches the far side");
        assert!((model.time_ns() - params.time_constant_ns() * 40.0).abs() < 1e-9);
    }

    #[test]
    fn workload_heat_superimposes_on_link_dissipation() {
        let params = RcNetworkParameters::paper_package();
        let with_workload = {
            let mut m =
                WorkloadHeatedEnvironment::new(params, vec![WorkloadTrace::constant(100.0)]);
            m.advance(&[100.0], params.time_constant_ns() * 40.0);
            ThermalModel::temperature_of(&m, 0).value()
        };
        // 100 mW of link + 100 mW of workload = the 200 mW steady state.
        let expected = 25.0 + params.steady_state_excess_k(200.0);
        assert!((with_workload - expected).abs() < 0.05);
    }

    #[test]
    fn burst_windows_heat_and_release() {
        let params = RcNetworkParameters::paper_package();
        let horizon = params.time_constant_ns() * 40.0;
        let mut model =
            WorkloadHeatedEnvironment::new(params, vec![WorkloadTrace::burst(250.0, 0.0, horizon)]);
        model.advance(&[0.0], horizon);
        let hot = ThermalModel::temperature_of(&model, 0).value();
        assert!(hot > 45.0, "burst must heat the node, got {hot}");
        // After the burst the node relaxes back to the ambient.
        model.advance(&[0.0], horizon);
        let cooled = ThermalModel::temperature_of(&model, 0).value();
        assert!((cooled - 25.0).abs() < 0.1, "got {cooled}");
    }

    #[test]
    fn trace_validation_catches_bad_parameters() {
        assert!(WorkloadTrace::constant(-1.0)
            .validate()
            .unwrap_err()
            .contains("baseline"));
        assert!(WorkloadTrace::burst(f64::NAN, 0.0, 1.0)
            .validate()
            .unwrap_err()
            .contains("burst power"));
        assert!(WorkloadTrace::burst(1.0, 10.0, 5.0)
            .validate()
            .unwrap_err()
            .contains("end before it starts"));
        assert!(WorkloadTrace::burst(1.0, f64::NAN, 5.0)
            .validate()
            .unwrap_err()
            .contains("NaN"));
        assert!(WorkloadTrace::idle().validate().is_ok());
    }

    #[test]
    fn spec_validation_and_instantiation_cover_all_families() {
        let prescribed = ThermalModelSpec::paper_ambient();
        assert!(prescribed.validate(4).is_ok());
        assert!(!prescribed.is_activity_coupled());
        assert_eq!(prescribed.instantiate(4).oni_count(), 4);

        let coupled = ThermalModelSpec::ActivityCoupled {
            network: RcNetworkParameters::paper_package(),
        };
        assert!(coupled.validate(4).is_ok());
        assert!(coupled.is_activity_coupled());
        assert!(coupled.instantiate(4).is_activity_coupled());

        let workload = ThermalModelSpec::WorkloadHeated {
            network: RcNetworkParameters::paper_package(),
            traces: WorkloadTrace::hot_cluster(4, 0, 100.0, 0.5),
        };
        assert!(workload.validate(4).is_ok());
        assert!(workload
            .validate(5)
            .unwrap_err()
            .contains("one trace per ONI"));
        assert!(workload.instantiate(4).is_activity_coupled());

        let bad_network = ThermalModelSpec::ActivityCoupled {
            network: RcNetworkParameters {
                heat_capacity_pj_per_k: 0.0,
                ..RcNetworkParameters::paper_package()
            },
        };
        assert!(bad_network
            .validate(4)
            .unwrap_err()
            .contains("heat capacity"));
    }

    #[test]
    fn design_temperatures_reflect_each_model_family() {
        // Uniform prescribed: the fixed ambient everywhere.
        assert!(ThermalModelSpec::paper_ambient()
            .design_temperatures(4)
            .expect("valid spec")
            .iter()
            .all(|t| (t.value() - 25.0).abs() < 1e-12));
        // Transient: the asymptotic target, not the start.
        let transient = ThermalModelSpec::Prescribed {
            environment: ThermalEnvironment::Transient {
                start: Celsius::new(25.0),
                target: Celsius::new(85.0),
                time_constant_ns: 500.0,
            },
        };
        assert!(transient
            .design_temperatures(3)
            .expect("valid spec")
            .iter()
            .all(|t| (t.value() - 85.0).abs() < 1e-12));
        // Hotspot: the static per-ONI gradient.
        let hotspot = ThermalModelSpec::Prescribed {
            environment: ThermalEnvironment::Hotspot {
                base: Celsius::new(30.0),
                peak: Celsius::new(80.0),
                center: 1,
                decay_per_hop: 0.5,
            },
        };
        let temps = hotspot.design_temperatures(6).expect("valid spec");
        assert!((temps[1].value() - 80.0).abs() < 1e-12);
        assert!(temps[1] > temps[2] && temps[2] > temps[4]);
        // Activity-coupled: the package ambient (no workload knowledge).
        let coupled = ThermalModelSpec::ActivityCoupled {
            network: RcNetworkParameters::paper_package(),
        };
        assert!(coupled
            .design_temperatures(4)
            .expect("valid spec")
            .iter()
            .all(|t| (t.value() - 25.0).abs() < 1e-12));
        // Workload-heated: matches an explicit 40 τ advance of the model.
        let params = RcNetworkParameters::paper_package();
        let traces = WorkloadTrace::hot_cluster(8, 2, 300.0, 0.4);
        let spec = ThermalModelSpec::WorkloadHeated {
            network: params,
            traces: traces.clone(),
        };
        let designed = spec.design_temperatures(8).expect("valid spec");
        let mut reference = WorkloadHeatedEnvironment::new(params, traces);
        reference.advance(&[0.0; 8], params.time_constant_ns() * 40.0);
        for (oni, t) in designed.iter().enumerate() {
            assert_eq!(
                t.value().to_bits(),
                ThermalModel::temperature_of(&reference, oni)
                    .value()
                    .to_bits(),
                "ONI {oni}"
            );
        }
        assert!(designed[2] > designed[6], "the cluster centre runs hottest");
    }

    #[test]
    #[should_panic(expected = "invalid workload trace")]
    fn invalid_trace_panics_at_construction() {
        let _ = WorkloadHeatedEnvironment::new(
            RcNetworkParameters::paper_package(),
            vec![WorkloadTrace::constant(f64::INFINITY)],
        );
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_power_intervals_panic() {
        let _ = WorkloadTrace::constant(10.0).mean_power_mw(100.0, 50.0);
    }

    #[test]
    fn zero_length_burst_windows_are_rejected() {
        // A burst that can never fire is a spec bug...
        assert!(WorkloadTrace::burst(50.0, 10.0, 10.0)
            .validate()
            .unwrap_err()
            .contains("zero-length"));
        // ...but the canonical steady traces carry a zero-power [0, 0)
        // window and must stay valid.
        assert!(WorkloadTrace::constant(10.0).validate().is_ok());
        assert!(WorkloadTrace::idle().validate().is_ok());
    }

    #[test]
    fn invalid_specs_surface_a_typed_error_instead_of_panicking() {
        let workload = ThermalModelSpec::WorkloadHeated {
            network: RcNetworkParameters::paper_package(),
            traces: WorkloadTrace::hot_cluster(4, 0, 100.0, 0.5),
        };
        let error = workload.design_temperatures(5).unwrap_err();
        assert!(matches!(
            &error,
            ThermalModelError::InvalidSpec { reason } if reason.contains("one trace per ONI")
        ));
        assert!(error.to_string().contains("invalid thermal model spec"));
        assert!(workload.phase_design_temperatures(5).is_err());
    }

    #[test]
    fn scheduled_spec_validates_instantiates_and_steps() {
        use crate::schedule::{WorkloadPhase, WorkloadSchedule};
        let params = RcNetworkParameters::paper_package();
        let schedule =
            WorkloadSchedule::migration(6, params.time_constant_ns() * 40.0, &[1, 4], 300.0, 0.4);
        let spec = ThermalModelSpec::WorkloadScheduled {
            network: params,
            schedule: schedule.clone(),
        };
        assert!(spec.validate(6).is_ok());
        assert!(spec.is_activity_coupled());
        assert!(spec.validate(3).unwrap_err().contains("one trace per ONI"));

        let mut model = spec.instantiate(6);
        assert_eq!(model.oni_count(), 6);
        // Settle phase 0: the cluster sits on ONI 1.
        model.advance(&[0.0; 6], params.time_constant_ns() * 40.0);
        assert!(model.temperature_of(1) > model.temperature_of(4));
        // Settle phase 1: the cluster has migrated to ONI 4.
        model.advance(&[0.0; 6], params.time_constant_ns() * 40.0);
        assert!(model.temperature_of(4) > model.temperature_of(1));

        let zero_length = ThermalModelSpec::WorkloadScheduled {
            network: params,
            schedule: WorkloadSchedule::new(vec![WorkloadPhase::new(
                0.0,
                vec![WorkloadTrace::idle(); 6],
            )]),
        };
        assert!(zero_length.validate(6).unwrap_err().contains("zero-length"));
    }

    #[test]
    fn scheduled_design_maps_cover_each_phase_and_fold_to_the_worst_case() {
        use crate::schedule::WorkloadSchedule;
        let params = RcNetworkParameters::paper_package();
        let spec = ThermalModelSpec::WorkloadScheduled {
            network: params,
            schedule: WorkloadSchedule::migration(6, 1000.0, &[1, 4], 300.0, 0.4),
        };
        let maps = spec.phase_design_temperatures(6).expect("valid spec");
        assert_eq!(maps.len(), 2);
        // Each phase map matches the equivalent workload-heated design map.
        for (map, center) in maps.iter().zip([1usize, 4]) {
            let heated = ThermalModelSpec::WorkloadHeated {
                network: params,
                traces: WorkloadTrace::hot_cluster(6, center, 300.0, 0.4),
            };
            let reference = heated.design_temperatures(6).expect("valid spec");
            for (oni, t) in map.iter().enumerate() {
                assert_eq!(t.value().to_bits(), reference[oni].value().to_bits());
            }
        }
        // The single-map query folds the per-ONI maximum over the phases.
        let worst = spec.design_temperatures(6).expect("valid spec");
        for oni in 0..6 {
            let expected = if maps[0][oni] > maps[1][oni] {
                maps[0][oni]
            } else {
                maps[1][oni]
            };
            assert_eq!(worst[oni].value().to_bits(), expected.value().to_bits());
        }
        assert!(worst[1] > worst[2], "both cluster centres stay hot");
        assert!(worst[4] > worst[2]);
    }

    #[test]
    fn single_phase_schedule_steps_bit_identically_to_the_plain_traces() {
        let params = RcNetworkParameters::paper_package();
        let traces = WorkloadTrace::hot_cluster(4, 1, 150.0, 0.5);
        let mut scheduled = ScheduledWorkloadEnvironment::new(
            params,
            crate::schedule::WorkloadSchedule::single(traces.clone()),
        );
        let mut plain = WorkloadHeatedEnvironment::new(params, traces);
        for step in 0..50 {
            let power = [3.0 + step as f64, 0.5, 7.0, 0.0];
            scheduled.advance(&power, 40.0);
            plain.advance(&power, 40.0);
        }
        for oni in 0..4 {
            assert_eq!(
                ThermalModel::temperature_of(&scheduled, oni)
                    .value()
                    .to_bits(),
                ThermalModel::temperature_of(&plain, oni).value().to_bits(),
                "ONI {oni}"
            );
        }
    }
}
