//! Heater-based thermal tuning of micro-rings.
//!
//! Every ring carries an integrated resistive heater that can hold the ring
//! at an elevated temperature, cancelling ambient drift.  The tuning has
//! three costs a power-aware link manager must model:
//!
//! 1. **heater power** — proportional to the compensated temperature
//!    excursion, quoted in µW/K per ring;
//! 2. **saturation** — a heater has a maximum power, hence a maximum
//!    compensable excursion;
//! 3. **lock error** — a real closed loop (bang-bang or dither-based) holds
//!    the ring only to within a residual error that grows with the excursion
//!    it is fighting.
//!
//! The [`TuningPolicy`] decides whether a ring bank tunes at all: tolerating
//! drift is free but costs link budget; tuning costs heater power but keeps
//! the rings on grid.  Which side wins is a link-budget question, answered by
//! `onoc-photonics`; this module only enumerates the candidate compensations.

use onoc_units::{KelvinDelta, Microwatts};
use serde::{Deserialize, Serialize};

/// How a ring bank responds to thermal drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TuningPolicy {
    /// Never power the heaters; the link budget absorbs the full drift.
    Tolerate,
    /// Always run the closed loop, whatever it costs.
    AlwaysTune,
    /// Evaluate both and pick whichever yields the lower total power while
    /// remaining feasible (the default).
    #[default]
    Adaptive,
}

impl TuningPolicy {
    /// The candidate compensations this policy allows, in preference order.
    #[must_use]
    pub fn candidates(self) -> &'static [TuningAction] {
        match self {
            Self::Tolerate => &[TuningAction::Tolerate],
            Self::AlwaysTune => &[TuningAction::Tune],
            Self::Adaptive => &[TuningAction::Tolerate, TuningAction::Tune],
        }
    }
}

/// One concrete choice the policy can make for a ring bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TuningAction {
    /// Leave the heaters off.
    Tolerate,
    /// Close the loop.
    Tune,
}

/// Outcome of applying a tuner to a temperature excursion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalCompensation {
    /// The excursion the loop was asked to fight.
    pub requested: KelvinDelta,
    /// The part of the excursion the heaters actually cancel.
    pub compensated: KelvinDelta,
    /// The residual excursion the rings still see (`requested − compensated`).
    pub residual: KelvinDelta,
    /// Heater power drawn by one ring for this compensation.
    pub heater_power_per_ring: Microwatts,
}

impl ThermalCompensation {
    /// The zero-cost, zero-effect compensation of a heater that stays off.
    #[must_use]
    pub fn off(requested: KelvinDelta) -> Self {
        Self {
            requested,
            compensated: KelvinDelta::zero(),
            residual: requested,
            heater_power_per_ring: Microwatts::zero(),
        }
    }
}

/// A per-ring heater and its closed-loop controller.
///
/// ```
/// use onoc_thermal::ThermalTuner;
/// use onoc_units::KelvinDelta;
///
/// let tuner = ThermalTuner::paper_heater();
/// let c = tuner.compensate(KelvinDelta::new(60.0));
/// // Most of the excursion is cancelled…
/// assert!(c.compensated.value() > 59.0);
/// // …at ~12 µW/K per ring…
/// assert!((c.heater_power_per_ring.value() - 12.0 * c.compensated.value()).abs() < 1e-9);
/// // …leaving a small residual lock error.
/// assert!(c.residual.value() > 0.0 && c.residual.value() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalTuner {
    /// Heater power per kelvin of compensated excursion, per ring.
    pub power_per_kelvin: Microwatts,
    /// Maximum heater power one ring can draw.
    pub max_power_per_ring: Microwatts,
    /// Residual lock error as a fraction of the requested excursion
    /// (loop gain limitation).
    pub lock_fraction: f64,
    /// Residual lock error floor when the loop is active (dither amplitude /
    /// DAC quantization), as a temperature-equivalent.
    pub lock_floor: KelvinDelta,
}

impl ThermalTuner {
    /// Creates a tuner.
    ///
    /// # Panics
    ///
    /// Panics if the lock fraction is outside `[0, 1)` or the lock floor is
    /// negative.
    #[must_use]
    pub fn new(
        power_per_kelvin: Microwatts,
        max_power_per_ring: Microwatts,
        lock_fraction: f64,
        lock_floor: KelvinDelta,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&lock_fraction),
            "lock fraction must be in [0, 1)"
        );
        assert!(lock_floor.value() >= 0.0, "lock floor must be non-negative");
        Self {
            power_per_kelvin,
            max_power_per_ring,
            lock_fraction,
            lock_floor,
        }
    }

    /// The heater assumed by the reproduction: 12 µW/K per ring (a typical
    /// silicon micro-heater: ~1.2 mW for a full 10 nm / 100 K free spectral
    /// range), saturating at 1.8 mW, with a closed loop that locks to
    /// 0.25% of the excursion plus a 0.03 K floor.
    #[must_use]
    pub fn paper_heater() -> Self {
        Self::new(
            Microwatts::new(12.0),
            Microwatts::new(1800.0),
            0.0025,
            KelvinDelta::new(0.03),
        )
    }

    /// Largest temperature excursion the heater can cancel before
    /// saturating.
    #[must_use]
    pub fn range(&self) -> KelvinDelta {
        if self.power_per_kelvin.is_zero() {
            KelvinDelta::zero()
        } else {
            KelvinDelta::new(self.max_power_per_ring.value() / self.power_per_kelvin.value())
        }
    }

    /// Runs the closed loop against the excursion `delta`.
    ///
    /// The returned compensation preserves the sign of `delta`: residual and
    /// compensated parts always sum to the request.
    #[must_use]
    pub fn compensate(&self, delta: KelvinDelta) -> ThermalCompensation {
        if delta.is_zero() {
            // A perfectly calibrated chip draws no heater power at all.
            return ThermalCompensation::off(delta);
        }
        let magnitude = delta.abs().value();
        let sign = delta.value().signum();
        // The loop cannot do better than its lock error, nor more than the
        // heater range allows.
        let lock_error = (self.lock_floor.value() + self.lock_fraction * magnitude).min(magnitude);
        let compensated = (magnitude - lock_error).min(self.range().value());
        let residual = magnitude - compensated;
        ThermalCompensation {
            requested: delta,
            compensated: KelvinDelta::new(sign * compensated),
            residual: KelvinDelta::new(sign * residual),
            heater_power_per_ring: Microwatts::new(self.power_per_kelvin.value() * compensated),
        }
    }

    /// Applies `action` to the excursion `delta`.
    #[must_use]
    pub fn apply(&self, action: TuningAction, delta: KelvinDelta) -> ThermalCompensation {
        match action {
            TuningAction::Tolerate => ThermalCompensation::off(delta),
            TuningAction::Tune => self.compensate(delta),
        }
    }
}

impl Default for ThermalTuner {
    fn default() -> Self {
        Self::paper_heater()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_excursion_costs_nothing() {
        let c = ThermalTuner::paper_heater().compensate(KelvinDelta::zero());
        assert!(c.heater_power_per_ring.is_zero());
        assert!(c.residual.is_zero());
        assert!(c.compensated.is_zero());
    }

    #[test]
    fn heater_power_is_monotone_in_the_compensated_excursion() {
        let tuner = ThermalTuner::paper_heater();
        let mut last = -1.0;
        for dt in 1..=120 {
            let c = tuner.compensate(KelvinDelta::new(f64::from(dt) * 0.5));
            assert!(
                c.heater_power_per_ring.value() >= last,
                "not monotone at ΔT = {}",
                f64::from(dt) * 0.5
            );
            last = c.heater_power_per_ring.value();
        }
    }

    #[test]
    fn residual_is_monotone_and_far_smaller_than_the_request() {
        let tuner = ThermalTuner::paper_heater();
        let mut last = 0.0;
        for dt in 1..=60 {
            let c = tuner.compensate(KelvinDelta::new(f64::from(dt)));
            assert!(c.residual.value() >= last);
            assert!(c.residual.value() < 0.01 * f64::from(dt) + 0.05);
            last = c.residual.value();
        }
    }

    #[test]
    fn compensation_parts_sum_to_the_request() {
        let tuner = ThermalTuner::paper_heater();
        for dt in [-60.0, -1.0, -0.01, 0.02, 5.0, 60.0] {
            let c = tuner.compensate(KelvinDelta::new(dt));
            assert!(
                (c.compensated.value() + c.residual.value() - dt).abs() < 1e-12,
                "ΔT = {dt}"
            );
            assert!(c.compensated.value() * dt >= 0.0, "sign preserved");
        }
    }

    #[test]
    fn cooling_excursions_are_compensated_symmetrically() {
        let tuner = ThermalTuner::paper_heater();
        let hot = tuner.compensate(KelvinDelta::new(40.0));
        let cold = tuner.compensate(KelvinDelta::new(-40.0));
        assert!((hot.residual.value() + cold.residual.value()).abs() < 1e-12);
        assert_eq!(hot.heater_power_per_ring, cold.heater_power_per_ring);
    }

    #[test]
    fn saturation_caps_the_compensation() {
        let tuner = ThermalTuner::new(
            Microwatts::new(12.0),
            Microwatts::new(120.0), // 10 K range
            0.0,
            KelvinDelta::zero(),
        );
        let c = tuner.compensate(KelvinDelta::new(60.0));
        assert!((c.compensated.value() - 10.0).abs() < 1e-12);
        assert!((c.residual.value() - 50.0).abs() < 1e-12);
        assert!((c.heater_power_per_ring.value() - 120.0).abs() < 1e-12);
    }

    #[test]
    fn policies_enumerate_the_expected_candidates() {
        assert_eq!(
            TuningPolicy::Tolerate.candidates(),
            &[TuningAction::Tolerate]
        );
        assert_eq!(TuningPolicy::AlwaysTune.candidates(), &[TuningAction::Tune]);
        assert_eq!(
            TuningPolicy::Adaptive.candidates(),
            &[TuningAction::Tolerate, TuningAction::Tune]
        );
        assert_eq!(TuningPolicy::default(), TuningPolicy::Adaptive);
    }

    #[test]
    fn apply_dispatches_on_the_action() {
        let tuner = ThermalTuner::paper_heater();
        let delta = KelvinDelta::new(30.0);
        let off = tuner.apply(TuningAction::Tolerate, delta);
        assert!(off.heater_power_per_ring.is_zero());
        assert!((off.residual.value() - 30.0).abs() < 1e-12);
        let on = tuner.apply(TuningAction::Tune, delta);
        assert!(on.heater_power_per_ring.value() > 0.0);
        assert!(on.residual.abs().value() < off.residual.abs().value());
    }

    #[test]
    #[should_panic(expected = "lock fraction")]
    fn invalid_lock_fraction_rejected() {
        let _ = ThermalTuner::new(
            Microwatts::new(12.0),
            Microwatts::new(1800.0),
            1.5,
            KelvinDelta::zero(),
        );
    }
}
