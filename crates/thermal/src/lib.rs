//! Temperature effects in the nanophotonic interconnect: micro-ring
//! resonance drift, heater-based thermal tuning and chip thermal
//! environments.
//!
//! The DAC'17 paper evaluates its coding/laser-power trade-off at a fixed
//! ambient temperature, but micro-ring resonators are the most
//! temperature-sensitive device in the link: silicon's thermo-optic
//! coefficient shifts a ring's resonance by roughly **0.1 nm/K**, while the
//! ring linewidth of the evaluated channel is only 0.17 nm.  A couple of
//! kelvin of uncompensated drift therefore destroys the link budget, and the
//! power spent *keeping the rings on grid* becomes a first-class term of the
//! channel power — alongside the laser and modulation terms the paper
//! accounts for.
//!
//! This crate provides the temperature-domain models, deliberately free of
//! any photonic-device dependency so that every layer of the workspace can
//! use them:
//!
//! * [`RingThermalModel`] — resonance drift vs. temperature relative to the
//!   calibration point (dλ/dT ≈ 0.1 nm/K for silicon rings);
//! * [`ThermalTuner`] — closed-loop heater tuning: per-ring tuning power in
//!   µW/K of compensated drift, heater saturation, and the residual lock
//!   error of a real control loop;
//! * [`TuningPolicy`] — tolerate the drift, always tune, or adaptively pick
//!   whichever costs less total power;
//! * [`ThermalEnvironment`] — uniform ambient, static hotspot gradients
//!   across the ONIs, and a first-order transient trace the NoC simulator
//!   samples over time;
//! * [`ActivityCoupledEnvironment`] — the *closed-loop* alternative to the
//!   prescribed traces: a per-ONI thermal RC network driven by the power the
//!   interconnect itself dissipates, stepped epoch by epoch by the NoC
//!   simulator's feedback engine;
//! * [`RingBankState`] / [`FabricationVariation`] — the per-ring spectral
//!   state: a deterministic, seeded fabrication offset per ring on top of
//!   the common-mode thermal drift, so different wavelengths of one lane
//!   detune differently;
//! * [`BankTuningMode`] — pure per-ring heating, or barrel-shift channel
//!   hopping (re-map logical wavelengths to the nearest-resonant rings and
//!   heat only the residual; cf. Cooling Codes);
//! * [`WavelengthAssignment`] / [`WavelengthAssigner`] — GLOW-style
//!   *design-time* thermal-aware wavelength-grid assignment: a seeded,
//!   deterministic greedy + local-search permutation of the
//!   logical-wavelength → ring mapping, chosen against a target heat map so
//!   the heaters fight only what drift and fabrication leave over;
//! * [`ThermalModel`] — the unified stepping contract over all of the above:
//!   prescribed traces ([`PrescribedEnvironment`]), the activity-coupled RC
//!   network, and [`WorkloadHeatedEnvironment`] (per-ONI compute-cluster
//!   heat injection superimposed on the link's own dissipation), with
//!   [`ThermalModelSpec`] as the serializable description a scenario
//!   configuration carries.
//!
//! The photonic consequences (how many dB of penalty a nanometre of residual
//! drift costs) are computed by `onoc-photonics` from its Lorentzian ring
//! model; the runtime consequences (re-selecting the ECC scheme as the chip
//! heats) live in `onoc-link`; scenario playback lives in `onoc-sim`.
//!
//! # Example
//!
//! ```
//! use onoc_thermal::{RingThermalModel, ThermalTuner};
//! use onoc_units::Celsius;
//!
//! let rings = RingThermalModel::paper_silicon();
//! let tuner = ThermalTuner::paper_heater();
//!
//! // 60 K above calibration the free-running drift is ~6 nm — 35 linewidths.
//! let drift = rings.drift_at(Celsius::new(85.0));
//! assert!((drift.nanometers() - 6.0).abs() < 1e-9);
//!
//! // The closed loop pulls that back to a small residual, for a price.
//! let compensation = tuner.compensate(rings.delta_at(Celsius::new(85.0)));
//! assert!(rings.drift_for(compensation.residual).nanometers().abs() < 0.05);
//! assert!(compensation.heater_power_per_ring.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod assign;
pub mod bank;
pub mod drift;
pub mod environment;
pub mod model;
pub mod schedule;
pub mod tuning;

pub use activity::{ActivityCoupledEnvironment, RcNetworkParameters};
pub use assign::{AssignmentStrategy, WavelengthAssigner, WavelengthAssignment};
pub use bank::{BankCompensation, BankTuningMode, FabricationVariation, RingBankState};
pub use drift::{ResonanceDrift, RingThermalModel};
pub use environment::ThermalEnvironment;
pub use model::{
    PrescribedEnvironment, ScheduledWorkloadEnvironment, ThermalModel, ThermalModelError,
    ThermalModelSpec, WorkloadHeatedEnvironment, WorkloadTrace,
};
pub use schedule::{WorkloadPhase, WorkloadSchedule};
pub use tuning::{ThermalCompensation, ThermalTuner, TuningPolicy};
