//! Offline API stand-in for `serde` (see `crates/compat/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything, so the traits here are empty markers with
//! blanket implementations and the derive macros are no-ops.  Swapping this
//! stub for the real crates.io `serde` requires no source change anywhere in
//! the workspace.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Probe {
        value: f64,
    }

    fn assert_traits<T: super::Serialize + for<'de> super::Deserialize<'de>>() {}

    #[test]
    fn derives_compile_and_traits_are_blanket_implemented() {
        assert_traits::<Probe>();
        assert_eq!(Probe { value: 1.0 }, Probe { value: 1.0 });
    }
}
