//! Offline API stand-in for the subset of `criterion` used by this workspace
//! (see `crates/compat/README.md`).
//!
//! Benchmarks really run and really time their bodies with `std::time`; the
//! output is a single mean ns/iteration line per benchmark instead of the
//! real crate's statistical analysis.  The API mirrors criterion 0.5 closely
//! enough that swapping in the real crate requires no source change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export shim).
pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, warming up first and collecting several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until it runs >= 1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let samples = 10;
        self.samples.clear();
        self.iters_per_sample = batch;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn mean_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return 0.0;
        }
        let total: Duration = self.samples.iter().sum();
        total.as_nanos() as f64 / (self.samples.len() as u64 * self.iters_per_sample) as f64
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.mean_ns_per_iter();
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Elements(n) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
        }
        Throughput::Bytes(n) => {
            format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
    });
    println!("bench: {label:<48} {ns:>12.1} ns/iter{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the sample count (accepted for API compatibility; the stub uses a
    /// fixed sampling plan).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.label),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark without input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        report(&format!("{}/{id}", self.name), &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        report(name, &bencher, None);
        self
    }
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        let mut group = c.benchmark_group("probe");
        group.throughput(Throughput::Elements(1));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("add", 2), &2u64, |b, &x| {
            b.iter(|| x + 2);
        });
        group.finish();
    }

    criterion_group!(probe_group, probe);

    #[test]
    fn harness_times_something() {
        probe_group();
        let mut bencher = Bencher::default();
        bencher.iter(|| (0..100u64).sum::<u64>());
        assert!(bencher.mean_ns_per_iter() > 0.0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("encode", "H(7,4)").label, "encode/H(7,4)");
        assert_eq!(BenchmarkId::from_parameter("uniform").label, "uniform");
    }
}
