//! Offline API stand-in for the subset of `rand` 0.8 used by this workspace
//! (see `crates/compat/README.md`).
//!
//! Provides [`rngs::StdRng`] (a xoshiro256++ generator seeded through
//! SplitMix64), [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and
//! [`Rng::gen_range`] over `usize`/`u64`/`f64` ranges.  The generated stream
//! differs from the real `rand::rngs::StdRng`, but all consumers only rely on
//! (a) determinism for a fixed seed and (b) sound uniform statistics, both of
//! which hold.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministically seeded generator.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits in [0, 1); strictly below p iff success.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample an empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw,
        // far below anything the statistical tests can resolve.
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let span = u128::from(self.end - self.start);
        let hi = ((u128::from(rng.next_u64()) * span) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ state seeded through
    /// SplitMix64 so that nearby seeds produce uncorrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_statistics() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
