//! Offline API stand-in for the subset of `proptest` used by this workspace
//! (see `crates/compat/README.md`).
//!
//! Supports the `proptest! { #[test] fn name(x in strategy, ...) { ... } }`
//! macro form with range strategies (`0usize..71`, `1.0f64..14.0`,
//! `3i32..11`) and `any::<T>()` for unsigned integers, plus `prop_assert!`
//! and `prop_assert_eq!`.  Each property runs a fixed number of
//! deterministically seeded cases, so failures are reproducible; the
//! shrinking machinery of the real crate is intentionally out of scope.

#![forbid(unsafe_code)]

/// Number of cases each property is exercised with.
pub const CASES: u32 = 48;

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategies produce values from the deterministic RNG.
pub mod strategy {
    use super::TestRng;

    /// A source of generated values (stand-in for `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty range strategy");
            let span = (self.end - self.start) as u64;
            self.start + (((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64) as usize
        }
    }

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = u128::from(self.end - self.start);
            self.start + ((u128::from(rng.next_u64()) * span) >> 64) as u64
        }
    }

    impl Strategy for std::ops::Range<i32> {
        type Value = i32;
        fn sample(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty range strategy");
            let span = (self.end - self.start) as u64;
            self.start + (((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64) as i32
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical "arbitrary" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix raw words with structured edge cases: all-zeros, all-ones
            // and sparse patterns exercise codec corner cases far more often
            // than uniform draws would.
            match rng.next_u64() % 8 {
                0 => 0,
                1 => u64::MAX,
                2 => 1u64 << (rng.next_u64() % 64),
                _ => rng.next_u64(),
            }
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u64::arbitrary(rng) as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical strategy for a type (stand-in for `proptest::prelude::any`).
#[must_use]
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, TestCaseError};
}

/// Property-test harness macro (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    // The user-side form includes `#[test]` among the attributes; it is
    // captured by the `$meta` repetition and re-emitted verbatim.
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Seed derived from the property name so distinct properties
                // explore distinct streams, deterministically.
                let __proptest_seed: u64 = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
                    });
                for __proptest_case in 0..$crate::CASES {
                    let mut __proptest_rng =
                        $crate::TestRng::new(__proptest_seed ^ u64::from(__proptest_case) << 32);
                    $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut __proptest_rng);)+
                    let __proptest_outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = __proptest_outcome {
                        panic!(
                            "property {} failed at case {}: {}\ninputs: {:?}",
                            stringify!($name),
                            __proptest_case,
                            err,
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_respect_bounds(index in 0usize..7, x in 1.0f64..2.0, e in 3i32..11) {
            prop_assert!(index < 7);
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..11).contains(&e));
        }

        /// `any::<u64>()` produces edge cases.
        #[test]
        fn any_u64_compiles(word in any::<u64>()) {
            prop_assert_eq!(word, word);
        }
    }

    mod failing {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100);
            }
        }

        #[test]
        #[should_panic(expected = "property")]
        fn failing_property_panics_with_context() {
            always_fails();
        }
    }
}
