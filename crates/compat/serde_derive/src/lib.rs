//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! stand-in (see `crates/compat/README.md`).
//!
//! The workspace only ever uses the serde derives as marker-trait bounds;
//! nothing is actually serialized.  The companion `serde` stub provides
//! blanket implementations of both traits, so these derives can expand to
//! nothing at all.

use proc_macro::TokenStream;

/// Expands to nothing; the stub `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stub `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
