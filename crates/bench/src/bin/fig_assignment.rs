//! Design-time wavelength-assignment sweep (new to this reproduction,
//! beyond the paper; cf. GLOW): per-ring fabrication offsets at
//! σ ∈ {0, 40, 80 pm} crossed with design/operating temperatures of
//! 25–85 °C, comparing **identity** (no assignment) against the
//! **GLOW-greedy** and **greedy + refine** assigners.  Each assignment is
//! searched at the row's temperature — the design point the chip is
//! synthesised for — and then evaluated there, under pure-heater runtime
//! tuning so the design-time mapping is the only spectral remapping.
//!
//! Three artefacts:
//!
//! 1. the (σ, T, strategy) grid of per-lane tuning power and the
//!    LatencyFirst scheme choice (the assignment moves the switch point:
//!    the uncoded path survives the whole sweep on an assigned chip);
//! 2. a fleet-wide check at σ = 40 pm / 85 °C over 8 per-ONI chip
//!    instances — the CI gate requires ≥ 20 % total P_tune reduction
//!    versus identity;
//! 3. the composition check: a chip *designed* for 85 °C evaluated across
//!    the sweep under pure-heater vs barrel-shift runtime tuning (the
//!    runtime shift hops back at the cold end, so the design assignment
//!    costs nothing there).
//!
//! Run with `cargo run -p onoc-bench --bin fig_assignment`.

use onoc_bench::{banner, default_shards, opt, parallel_map, print_table};
use onoc_ecc_codes::EccScheme;
use onoc_link::report::TextTable;
use onoc_link::{AssignmentStrategy, LinkManager, NanophotonicLink, WavelengthAssignment};
use onoc_thermal::{BankTuningMode, FabricationVariation};
use onoc_units::Celsius;

const CHIP_SEED: u64 = 42;
const ASSIGN_SEED: u64 = 7;

fn sigmas_nm() -> [f64; 3] {
    [0.0, 0.040, 0.080]
}

fn temperatures() -> Vec<Celsius> {
    (25..=85)
        .step_by(10)
        .map(|t| Celsius::new(f64::from(t)))
        .collect()
}

/// The link of one chip instance, optionally re-assigned for `design`.
fn designed_link(
    sigma_nm: f64,
    chip_seed: u64,
    strategy: Option<AssignmentStrategy>,
    design: Celsius,
) -> (NanophotonicLink, WavelengthAssignment) {
    let link = NanophotonicLink::paper_link()
        .with_fabrication_variation(FabricationVariation::new(sigma_nm, chip_seed));
    match strategy {
        None => {
            let n = link.channel().geometry().wavelength_count();
            (link, WavelengthAssignment::identity(n))
        }
        Some(strategy) => {
            let assigner = link.wavelength_assigner(strategy, ASSIGN_SEED);
            let assignment = assigner.assign(&link.ring_bank_state_at(design));
            (
                link.clone()
                    .with_wavelength_assignment(assignment.clone())
                    .expect("assigner output covers the grid"),
                assignment,
            )
        }
    }
}

/// One evaluated grid cell: the three strategies at one (σ, T).
struct Cell {
    sigma_nm: f64,
    temperature: Celsius,
    tuning_mw: [Option<f64>; 3],
    offset: i64,
    identity_scheme: Option<EccScheme>,
    assigned_scheme: Option<EccScheme>,
}

fn evaluate(sigma_nm: f64, temperature: Celsius) -> Cell {
    let strategies = [
        None,
        Some(AssignmentStrategy::Greedy),
        Some(AssignmentStrategy::GreedyRefine),
    ];
    let mut tuning_mw = [None; 3];
    let mut offset = 0;
    let mut identity_scheme = None;
    let mut assigned_scheme = None;
    for (slot, strategy) in strategies.into_iter().enumerate() {
        let (link, assignment) = designed_link(sigma_nm, CHIP_SEED, strategy, temperature);
        tuning_mw[slot] = link
            .operating_point_at(EccScheme::Hamming7164, 1e-11, temperature)
            .ok()
            .map(|p| p.power.tuning.value());
        // Only the identity and refined slots report a LatencyFirst scheme;
        // skip the multi-scheme manager solve for the intermediate one.
        if strategy == Some(AssignmentStrategy::Greedy) {
            continue;
        }
        let manager = LinkManager::new(link, EccScheme::paper_schemes().to_vec(), 1e-11);
        let scheme = manager
            .configure_at(onoc_link::TrafficClass::LatencyFirst, temperature)
            .map(|d| d.point.scheme());
        match strategy {
            None => identity_scheme = scheme,
            Some(_) => {
                assigned_scheme = scheme;
                offset = assignment.design_offset(0);
            }
        }
    }
    Cell {
        sigma_nm,
        temperature,
        tuning_mw,
        offset,
        identity_scheme,
        assigned_scheme,
    }
}

fn scheme_label(scheme: Option<EccScheme>) -> String {
    scheme.map_or_else(|| "(unservable)".to_owned(), |s| s.to_string())
}

fn main() {
    banner(
        "Assignment sweep",
        "GLOW-style design-time wavelength assignment vs identity, H(71,64), BER = 1e-11",
    );
    println!(
        "Chip seed {CHIP_SEED}, assigner seed {ASSIGN_SEED}; each row's assignment is searched at"
    );
    println!("that row's temperature (the design point); pure-heater runtime tuning.");
    println!();

    let grid: Vec<(f64, Celsius)> = sigmas_nm()
        .into_iter()
        .flat_map(|sigma| temperatures().into_iter().map(move |t| (sigma, t)))
        .collect();
    let cells = parallel_map(&grid, default_shards(), |&(sigma, t)| evaluate(sigma, t));

    let mut table = TextTable::new(vec![
        "sigma (pm)",
        "T (degC)",
        "Ptune identity (mW/wl)",
        "Ptune greedy (mW/wl)",
        "Ptune refine (mW/wl)",
        "offset (slots)",
        "LatencyFirst identity",
        "LatencyFirst assigned",
    ]);
    for cell in &cells {
        table.push_row(vec![
            format!("{:.0}", cell.sigma_nm * 1000.0),
            format!("{:.0}", cell.temperature.value()),
            opt(cell.tuning_mw[0], 3),
            opt(cell.tuning_mw[1], 3),
            opt(cell.tuning_mw[2], 3),
            format!("{:+}", cell.offset),
            scheme_label(cell.identity_scheme),
            scheme_label(cell.assigned_scheme),
        ]);
    }
    print_table(&table);

    // LatencyFirst switch points per σ: where the scheme choice changes as
    // the design/operating temperature rises.
    for sigma in sigmas_nm() {
        for (label, pick) in [("identity", 0usize), ("assigned", 1usize)] {
            let mut previous: Option<EccScheme> = None;
            for cell in cells.iter().filter(|c| c.sigma_nm == sigma) {
                let scheme = if pick == 0 {
                    cell.identity_scheme
                } else {
                    cell.assigned_scheme
                };
                if let (Some(before), Some(after)) = (previous, scheme) {
                    if before != after {
                        println!(
                            "  * sigma {:.0} pm, {label}: LatencyFirst switches {before} -> {after} by {:.0} degC",
                            sigma * 1000.0,
                            cell.temperature.value()
                        );
                    }
                }
                previous = scheme;
            }
        }
    }
    println!();

    // Fleet-wide acceptance check: 8 per-ONI chip instances at σ = 40 pm,
    // designed for and operated at a uniform 85 °C.
    let hot = Celsius::new(85.0);
    let fleet_tuning = |strategy: Option<AssignmentStrategy>| -> f64 {
        (0..8u64)
            .map(|oni| {
                let (link, _) = designed_link(0.040, CHIP_SEED ^ (oni + 1), strategy, hot);
                link.operating_point_at(EccScheme::Hamming7164, 1e-11, hot)
                    .expect("H(71,64) survives 85 degC")
                    .power
                    .tuning
                    .value()
            })
            .sum()
    };
    let identity = fleet_tuning(None);
    let greedy = fleet_tuning(Some(AssignmentStrategy::Greedy));
    let refined = fleet_tuning(Some(AssignmentStrategy::GreedyRefine));
    let reduction = 1.0 - refined / identity;
    println!("Fleet-wide P_tune at sigma = 40 pm, 85 degC (8 chip instances, mW/wl summed):");
    println!("  identity      : {identity:.3}");
    println!(
        "  GLOW-greedy   : {greedy:.3}  ({:.1}% saved)",
        (1.0 - greedy / identity) * 100.0
    );
    println!(
        "  greedy+refine : {refined:.3}  ({:.1}% saved)",
        reduction * 100.0
    );
    println!();

    // Composition check: one chip designed for 85 °C, swept cold-to-hot
    // under pure-heater vs barrel-shift runtime tuning.
    println!("Design-for-85-degC chip across the sweep (sigma = 40 pm): runtime barrel");
    println!("shifting hops back at the cold end, so the baked-in rotation costs nothing.");
    let (designed, _) = designed_link(
        0.040,
        CHIP_SEED,
        Some(AssignmentStrategy::GreedyRefine),
        hot,
    );
    let mut compose = TextTable::new(vec![
        "T (degC)",
        "Ptune pure (mW/wl)",
        "Ptune barrel (mW/wl)",
        "runtime shift",
    ]);
    for t in temperatures() {
        let pure = designed
            .operating_point_at(EccScheme::Hamming7164, 1e-11, t)
            .ok();
        let barrel = designed
            .clone()
            .with_bank_tuning_mode(BankTuningMode::full_barrel_shift(16))
            .operating_point_at(EccScheme::Hamming7164, 1e-11, t)
            .ok();
        compose.push_row(vec![
            format!("{:.0}", t.value()),
            opt(pure.as_ref().map(|p| p.power.tuning.value()), 3),
            opt(barrel.as_ref().map(|p| p.power.tuning.value()), 3),
            barrel.as_ref().map_or_else(
                || "--".to_owned(),
                |p| format!("{:+}", p.thermal.barrel_shift),
            ),
        ]);
    }
    print_table(&compose);

    // Acceptance gates for CI.
    let mut violations = 0;
    if reduction < 0.20 {
        println!(
            "  ! violation: fleet-wide P_tune reduction {:.1}% is below the 20% gate",
            reduction * 100.0
        );
        violations += 1;
    }
    if refined > greedy + 1e-9 {
        println!("  ! violation: refinement made the assignment worse ({refined} vs {greedy})");
        violations += 1;
    }
    // The assigned chip must keep the uncoded path alive at 85 degC (the
    // LatencyFirst switch point moves out of the sweep).
    for cell in cells
        .iter()
        .filter(|c| (c.sigma_nm - 0.040).abs() < 1e-12 && c.temperature.value() >= 55.0)
    {
        if cell.assigned_scheme != Some(EccScheme::Uncoded) {
            println!(
                "  ! violation at {:.0} degC: assigned LatencyFirst scheme is {}",
                cell.temperature.value(),
                scheme_label(cell.assigned_scheme)
            );
            violations += 1;
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
}
