//! Ablation A1: sweep the full Hamming/SECDED/baseline code family at a fixed
//! BER target and report laser power, channel power, CT and energy per bit —
//! answering "was H(7,4)/H(71,64) the right choice, or would another block
//! length do better?"

use onoc_bench::{banner, print_table};
use onoc_link::explore::{mark_pareto, DesignSpace};
use onoc_link::report::{format_ber, TextTable};

fn main() {
    banner(
        "Ablation A1",
        "code-length sweep over the full code registry",
    );

    let sweep = DesignSpace::code_ablation();
    for &ber in &[1e-9, 1e-11, 1e-12] {
        println!("--- target BER = {} ---", format_ber(ber));
        let points = sweep.evaluate_at(ber);
        let marked = mark_pareto(&points);
        let mut table = TextTable::new(vec![
            "scheme",
            "n",
            "k",
            "rate",
            "Plaser (mW)",
            "Pchannel (mW)",
            "CT",
            "pJ/bit",
            "Pareto",
        ]);
        for p in &marked {
            let scheme = p.point.scheme();
            table.push_row(vec![
                scheme.to_string(),
                scheme.block_length().to_string(),
                scheme.message_length().to_string(),
                format!("{:.3}", scheme.rate()),
                format!("{:.2}", p.point.laser.laser_electrical_power.value()),
                format!("{:.1}", p.point.channel_power.value()),
                format!("{:.2}", p.point.communication_time_factor()),
                format!("{:.2}", p.point.energy_per_bit.value()),
                if p.on_front { "yes" } else { "no" }.to_owned(),
            ]);
        }
        print_table(&table);
        let infeasible: Vec<String> = sweep
            .schemes()
            .iter()
            .filter(|&&s| sweep.link().operating_point(s, ber).is_err())
            .map(|s| s.to_string())
            .collect();
        if !infeasible.is_empty() {
            println!("infeasible at this BER: {}", infeasible.join(", "));
        }
        println!();
    }
    println!("Expected shape: short blocks (H(7,4)) minimise laser power, long blocks (H(71,64),");
    println!("H(127,120)) minimise time overhead; the paper's two picks bracket the Pareto knee.");
}
