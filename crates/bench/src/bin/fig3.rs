//! Regenerates Fig. 3: optical transmission of a micro-ring modulator in the
//! ON and OFF states around its resonance (the extinction-ratio notch).

use onoc_bench::{banner, print_table};
use onoc_link::report::TextTable;
use onoc_photonics::devices::{MicroRingResonator, RingState};
use onoc_units::Nanometers;

fn main() {
    banner(
        "Fig. 3",
        "optical signal transmission in the micro-ring modulator (ON vs OFF)",
    );

    let carrier = Nanometers::new(1550.0);
    let ring = MicroRingResonator::paper_modulator(carrier);

    let mut table = TextTable::new(vec![
        "wavelength (nm)",
        "OFF transmission (dB)",
        "ON transmission (dB)",
    ]);
    // Sweep ±0.6 nm around the carrier, 41 samples.
    for step in -20..=20 {
        let wavelength = Nanometers::new(carrier.value() + step as f64 * 0.03);
        let off = ring
            .through_transmission(wavelength, RingState::Off)
            .value();
        let on = ring.through_transmission(wavelength, RingState::On).value();
        table.push_row(vec![
            format!("{:.3}", wavelength.value()),
            format!("{:.2}", 10.0 * off.log10()),
            format!("{:.2}", 10.0 * on.log10()),
        ]);
    }
    print_table(&table);

    let er = ring.extinction_ratio(carrier);
    println!("Extinction ratio at the carrier: {er:.2} (paper: 6.9 dB, ref. [15])");
    println!(
        "ON/OFF resonance shift: {:.3} nm (blue shift of the resonance under forward bias)",
        ring.resonance(RingState::On).value() - ring.resonance(RingState::Off).value()
    );
}
