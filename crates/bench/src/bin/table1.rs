//! Regenerates Table I: synthesis results of the ONI interfaces
//! (area, critical path, static and dynamic power per block, plus per-mode
//! totals) for the uncoded, H(7,4) and H(71,64) communication modes.

use onoc_bench::{banner, print_table};
use onoc_ecc_codes::EccScheme;
use onoc_interface::blocks::{InterfaceSide, SynthesisDatabase};
use onoc_link::report::TextTable;

fn side_name(side: InterfaceSide) -> &'static str {
    match side {
        InterfaceSide::Transmitter => "Transmitter",
        InterfaceSide::Receiver => "Receiver",
    }
}

fn main() {
    banner(
        "Table I",
        "synthesis results of the interfaces (28 nm FDSOI, FIP = 1 GHz, Ndata = 64, Fmod = 10 Gb/s)",
    );
    let db = SynthesisDatabase::table1();

    let mut table = TextTable::new(vec![
        "side",
        "hardware block",
        "area (um^2)",
        "critical path (ps)",
        "static (nW)",
        "dynamic (uW)",
        "total (uW)",
    ]);
    for block in db.blocks() {
        table.push_row(vec![
            side_name(block.side).to_owned(),
            format!("{:?}", block.kind),
            format!("{:.0}", block.area.value()),
            format!("{:.0}", block.critical_path.value()),
            format!("{:.1}", block.static_power.value()),
            format!("{:.2}", block.dynamic_power.value()),
            format!("{:.2}", block.total_power().value()),
        ]);
    }
    print_table(&table);

    let mut totals = TextTable::new(vec![
        "side",
        "mode",
        "active dynamic power (uW)",
        "total area (um^2)",
    ]);
    for side in [InterfaceSide::Transmitter, InterfaceSide::Receiver] {
        for scheme in [
            EccScheme::Hamming74,
            EccScheme::Hamming7164,
            EccScheme::Uncoded,
        ] {
            totals.push_row(vec![
                side_name(side).to_owned(),
                scheme.to_string(),
                format!("{:.2}", db.dynamic_power(side, scheme).value()),
                format!("{:.0}", db.total_area(side).value()),
            ]);
        }
    }
    print_table(&totals);
    println!(
        "Paper anchors: TX totals 9.57 / 5.99 / 3.16 uW, RX totals 10.1 / 7.21 / 4.29 uW, \
         areas 2013 / 3050 um^2."
    );
}
