//! Workload-heated hot-cluster sweep (new to this reproduction, beyond the
//! paper): a compute cluster under one corner of the interposer injects heat
//! into the per-ONI thermal RC network *on top of* the link's own
//! dissipation, and the epoch-gated manager splits the interconnect —
//! channels near the cluster fall back to H(71,64) while the far side keeps
//! riding the uncoded path.
//!
//! Neither legacy entry point could express this: the prescribed scenarios
//! (`ThermalScenario`) have no self-heating feedback, and the feedback
//! engine (`FeedbackSimulation`) only heated the chip with the link's own
//! uniform dissipation.  The scenario needs the unified surface —
//! `ScenarioBuilder::workload_heated` composing a `WorkloadHeatedEnvironment`
//! with the epoch-gated decision policy.
//!
//! Run with `cargo run -p onoc-bench --bin fig_workload`.

use onoc_bench::{banner, default_shards, parallel_map, print_table};
use onoc_link::report::TextTable;
use onoc_link::TrafficClass;
use onoc_sim::traffic::TrafficPattern;
use onoc_sim::{DecisionPolicy, RunReport, ScenarioBuilder};
use onoc_thermal::{RcNetworkParameters, WorkloadTrace};
use onoc_units::Celsius;

const ONI_COUNT: usize = 12;
const CLUSTER_CENTER: usize = 3;
const CLUSTER_DECAY: f64 = 0.45;

/// A package with a slightly better heat sink than the feedback demos
/// (0.06 K/mW to ambient), so the link's own uniform dissipation alone
/// settles around 45 °C — below the uncoded collapse — and the spatial split
/// is driven purely by the cluster injection.
fn network() -> RcNetworkParameters {
    RcNetworkParameters {
        ambient: Celsius::new(25.0),
        heat_capacity_pj_per_k: 2000.0,
        ambient_resistance_k_per_mw: 0.06,
        coupling_resistance_k_per_mw: 1.5,
    }
}

fn run(cluster_peak_mw: f64) -> RunReport {
    ScenarioBuilder::new()
        .oni_count(ONI_COUNT)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 80,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(8.0)
        .seed(17)
        .workload_heated(
            network(),
            WorkloadTrace::hot_cluster(ONI_COUNT, CLUSTER_CENTER, cluster_peak_mw, CLUSTER_DECAY),
        )
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .expect("valid workload scenario")
        .run()
}

fn main() {
    banner(
        "Workload sweep",
        "hot compute cluster + link self-heating: spatially non-uniform scheme choice",
    );
    let network = network();
    println!(
        "RC package: R_amb = {} K/mW, R_couple = {} K/mW, C = {} pJ/K (tau = {:.0} ns);",
        network.ambient_resistance_k_per_mw,
        network.coupling_resistance_k_per_mw,
        network.heat_capacity_pj_per_k,
        network.time_constant_ns(),
    );
    println!(
        "cluster centred at ONI {CLUSTER_CENTER}, geometric decay {CLUSTER_DECAY} per hop; \
         LatencyFirst traffic."
    );
    println!();

    // Independent closed-loop runs per cluster power: one shard each.
    let peaks = [0.0, 150.0, 250.0, 350.0];
    let reports = parallel_map(&peaks, default_shards(), |&peak| run(peak));

    let mut table = TextTable::new(vec![
        "cluster peak (mW)",
        "hottest ONI (degC)",
        "coolest ONI (degC)",
        "coded ONIs",
        "switches",
        "pJ/bit",
    ]);
    for (peak, report) in peaks.iter().zip(&reports) {
        let hottest = report
            .per_oni
            .iter()
            .map(|o| o.peak_temperature_c)
            .fold(f64::NEG_INFINITY, f64::max);
        let coolest = report
            .per_oni
            .iter()
            .map(|o| o.peak_temperature_c)
            .fold(f64::INFINITY, f64::min);
        let coded = report
            .per_oni
            .iter()
            .filter(|o| o.scheme != report.baseline_scheme)
            .count();
        table.push_row(vec![
            format!("{peak:.0}"),
            format!("{hottest:.1}"),
            format!("{coolest:.1}"),
            format!("{coded}/{ONI_COUNT}"),
            format!("{}", report.total_switches()),
            format!("{:.2}", report.stats.energy_per_bit_pj()),
        ]);
    }
    print_table(&table);

    // The per-ONI split of the 250 mW run, the headline figure.
    let headline = &reports[2];
    println!("Per-ONI split at 250 mW of cluster power (hop distance from ONI {CLUSTER_CENTER}):");
    let mut split = TextTable::new(vec![
        "ONI",
        "hops",
        "workload in (mW)",
        "peak T (degC)",
        "scheme",
        "static energy share",
    ]);
    let traces = WorkloadTrace::hot_cluster(ONI_COUNT, CLUSTER_CENTER, 250.0, CLUSTER_DECAY);
    let total_static: f64 = headline.per_oni.iter().map(|o| o.static_energy_pj).sum();
    for oni in &headline.per_oni {
        let direct = oni.oni.abs_diff(CLUSTER_CENTER);
        let hops = direct.min(ONI_COUNT - direct);
        split.push_row(vec![
            format!("{}", oni.oni),
            format!("{hops}"),
            format!("{:.1}", traces[oni.oni].power_at(0.0)),
            format!("{:.1}", oni.peak_temperature_c),
            oni.scheme.to_string(),
            format!("{:.1}%", 100.0 * oni.static_energy_pj / total_static),
        ]);
    }
    print_table(&split);
    println!(
        "Expected shape: the cluster's neighbours cross the ~50 degC uncoded collapse and the"
    );
    println!(
        "manager switches them to {}; the far side of the ring never leaves the uncoded path.",
        onoc_ecc_codes::EccScheme::Hamming7164
    );

    // Acceptance criteria, visible to CI.
    let baseline = &reports[0];
    let mut ok = true;
    if baseline.total_switches() != 0 {
        println!("FAIL: the link's own dissipation alone must not force a switch here");
        ok = false;
    }
    let centre = &headline.per_oni[CLUSTER_CENTER];
    if centre.scheme == headline.baseline_scheme {
        println!("FAIL: the cluster-centre channel never switched to the coded path");
        ok = false;
    }
    let far = &headline.per_oni[(CLUSTER_CENTER + ONI_COUNT / 2) % ONI_COUNT];
    if far.scheme != headline.baseline_scheme {
        println!("FAIL: the far side of the ring should stay uncoded");
        ok = false;
    }
    if headline.distinct_final_schemes() != 2 {
        println!("FAIL: the cluster must split the interconnect between two schemes");
        ok = false;
    }
    if headline.total_switches() == 0 {
        println!("FAIL: no workload-driven switch observed");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
}
