//! Regenerates Fig. 6a: per-wavelength channel power breakdown
//! (P_enc+dec, P_MR, P_laser) at BER = 10⁻¹¹ for the three schemes, plus the
//! communication-time annotation and the energy-per-bit figures.

use onoc_bench::{banner, print_table};
use onoc_ecc_codes::EccScheme;
use onoc_link::report::{render_operating_points, TextTable};
use onoc_link::NanophotonicLink;

fn main() {
    banner(
        "Fig. 6a",
        "power contribution in an MWSR channel for BER = 1e-11",
    );

    let link = NanophotonicLink::paper_link();
    let points = link.feasible_points(&EccScheme::paper_schemes(), 1e-11);
    println!("{}", render_operating_points(&points));

    let mut table = TextTable::new(vec![
        "scheme",
        "Penc+dec (mW/wl)",
        "PMR (mW/wl)",
        "Plaser (mW/wl)",
        "laser share (%)",
        "channel power, 16 wl (mW)",
        "saving vs uncoded (%)",
        "CT",
        "pJ/bit",
    ]);
    let uncoded_power = points
        .iter()
        .find(|p| p.scheme() == EccScheme::Uncoded)
        .map(|p| p.channel_power.value())
        .unwrap_or(f64::NAN);
    for p in &points {
        let saving = 100.0 * (1.0 - p.channel_power.value() / uncoded_power);
        table.push_row(vec![
            p.scheme().to_string(),
            format!("{:.4}", p.power.encoder_decoder.value()),
            format!("{:.2}", p.power.modulation.value()),
            format!("{:.2}", p.power.laser.value()),
            format!("{:.1}", p.power.laser_fraction() * 100.0),
            format!("{:.1}", p.channel_power.value()),
            format!("{:.1}", saving),
            format!("{:.2}", p.communication_time_factor()),
            format!("{:.2}", p.energy_per_bit.value()),
        ]);
    }
    print_table(&table);
    println!("Paper anchors: laser share ~92% uncoded; channel power 251 -> 136 mW (-45% H(71,64), -49% H(7,4));");
    println!("CT = 1 / 1.1 / 1.75; 12 ONIs x 16 waveguides -> ~22 W total interconnect saving.");

    // Whole-interconnect saving (12 ONIs, one 16-wavelength waveguide each).
    if let (Some(uncoded), Some(best)) = (
        points.iter().find(|p| p.scheme() == EccScheme::Uncoded),
        points
            .iter()
            .filter(|p| p.scheme() != EccScheme::Uncoded)
            .min_by(|a, b| {
                a.channel_power
                    .value()
                    .partial_cmp(&b.channel_power.value())
                    .unwrap()
            }),
    ) {
        let per_waveguide = uncoded.channel_power.value() - best.channel_power.value();
        let total_w = per_waveguide * 12.0 * 16.0 / 1000.0;
        println!(
            "Interconnect-level saving with {}: {:.1} W (paper: ~22 W with 16 waveguides per channel, 12 ONIs).",
            best.scheme(),
            total_w
        );
    }
}
