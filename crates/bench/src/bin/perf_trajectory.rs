//! Perf-trajectory benchmark: runs the fixed scenario matrix (fleet size ×
//! decision policy × fabrication variation) with the telemetry registry
//! recorder attached, self-gates that every deterministic counter and the
//! full run report are bit-identical across thread counts, and writes
//! `BENCH_scaling.json` at the repository root.
//!
//! Exit status is non-zero on any determinism violation, so CI can gate on
//! it directly.

use onoc_bench::banner;
use onoc_bench::perf::{
    attach_scale_out, build_document, build_scale_out_section, default_output_path,
    default_snapshot_path, scenario_matrix, DETERMINISM_THREAD_COUNTS, SCALE_OUT_MESSAGES_PER_NODE,
    SCALE_OUT_ONI_COUNT, SCALE_OUT_REDUCED_MESSAGES_PER_NODE, SCALE_OUT_REDUCED_ONI_COUNT,
    SCALE_OUT_THREAD_COUNTS,
};

fn main() {
    banner(
        "perf_trajectory",
        "telemetry scaling matrix -> BENCH_scaling.json",
    );

    let cases = scenario_matrix();
    println!(
        "running {} scenarios at thread counts {:?}...\n",
        cases.len(),
        DETERMINISM_THREAD_COUNTS
    );

    let mut document = match build_document(&cases) {
        Ok(document) => document,
        Err(failures) => {
            for failure in &failures {
                eprintln!("FAIL: {failure}");
            }
            eprintln!(
                "\nFAIL: {} determinism violation(s) across the matrix",
                failures.len()
            );
            std::process::exit(1);
        }
    };

    println!(
        "running scale-out suite: {SCALE_OUT_ONI_COUNT} ONIs x {SCALE_OUT_MESSAGES_PER_NODE} \
         msgs/node at thread counts {SCALE_OUT_THREAD_COUNTS:?}...\n"
    );
    let snapshot_path = default_snapshot_path();
    let scale_out = match build_scale_out_section(
        SCALE_OUT_ONI_COUNT,
        SCALE_OUT_MESSAGES_PER_NODE,
        SCALE_OUT_REDUCED_ONI_COUNT,
        SCALE_OUT_REDUCED_MESSAGES_PER_NODE,
        &snapshot_path,
    ) {
        Ok(section) => section,
        Err(failures) => {
            for failure in &failures {
                eprintln!("FAIL: {failure}");
            }
            eprintln!(
                "\nFAIL: {} violation(s) in the scale-out suite",
                failures.len()
            );
            std::process::exit(1);
        }
    };
    if let Some(non_det) = scale_out.get("non_deterministic") {
        let field = |name: &str| {
            non_det
                .get(name)
                .and_then(onoc_telemetry::Json::as_f64)
                .unwrap_or(0.0)
        };
        let max_threads = SCALE_OUT_THREAD_COUNTS.last().copied().unwrap_or(1);
        println!(
            "scale-out run-phase speedup 1 -> {max_threads} threads: {:.2}x (floor {} on {} cores, \
             enforced: {})",
            field(&format!("run_speedup_1_to_{max_threads}")),
            field("speedup_floor"),
            field("available_parallelism"),
            non_det
                .get("speedup_floor_enforced")
                .and_then(onoc_telemetry::Json::as_bool)
                .unwrap_or(false),
        );
        println!("wrote {}\n", snapshot_path.display());
    }
    attach_scale_out(&mut document, scale_out);

    // Per-case one-liner so the CI log shows the trajectory at a glance.
    if let Some(rendered) = document.get("cases").and_then(|c| c.as_array()) {
        println!(
            "{:<30} {:>8} {:>10} {:>10} {:>9}",
            "case", "messages", "solves", "cache-hit", "epochs"
        );
        for case in rendered {
            let det = case.get("deterministic").and_then(|d| d.get("report"));
            let field = |name: &str| {
                det.and_then(|r| r.get(name))
                    .and_then(onoc_telemetry::Json::as_f64)
                    .unwrap_or(0.0)
            };
            println!(
                "{:<30} {:>8} {:>10} {:>9.1}% {:>9}",
                case.get("label").and_then(|l| l.as_str()).unwrap_or("?"),
                field("delivered_messages"),
                field("solver_invocations"),
                100.0 * field("cache_hit_rate"),
                field("epochs"),
            );
        }
    }

    let path = default_output_path();
    let body = document.render_pretty();
    if let Err(e) = std::fs::write(&path, body + "\n") {
        eprintln!("FAIL: could not write {}: {e}", path.display());
        std::process::exit(1);
    }

    println!(
        "\nPASS: deterministic sections bit-identical across thread counts {DETERMINISM_THREAD_COUNTS:?}"
    );
    println!("wrote {}", path.display());
}
