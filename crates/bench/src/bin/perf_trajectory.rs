//! Perf-trajectory benchmark: runs the fixed scenario matrix (fleet size ×
//! decision policy × fabrication variation) with the telemetry registry
//! recorder attached, self-gates that every deterministic counter and the
//! full run report are bit-identical across thread counts, and writes
//! `BENCH_scaling.json` at the repository root.
//!
//! Exit status is non-zero on any determinism violation, so CI can gate on
//! it directly.

use onoc_bench::banner;
use onoc_bench::perf::{
    build_document, default_output_path, scenario_matrix, DETERMINISM_THREAD_COUNTS,
};

fn main() {
    banner(
        "perf_trajectory",
        "telemetry scaling matrix -> BENCH_scaling.json",
    );

    let cases = scenario_matrix();
    println!(
        "running {} scenarios at thread counts {:?}...\n",
        cases.len(),
        DETERMINISM_THREAD_COUNTS
    );

    let document = match build_document(&cases) {
        Ok(document) => document,
        Err(failures) => {
            for failure in &failures {
                eprintln!("FAIL: {failure}");
            }
            eprintln!(
                "\nFAIL: {} determinism violation(s) across the matrix",
                failures.len()
            );
            std::process::exit(1);
        }
    };

    // Per-case one-liner so the CI log shows the trajectory at a glance.
    if let Some(rendered) = document.get("cases").and_then(|c| c.as_array()) {
        println!(
            "{:<30} {:>8} {:>10} {:>10} {:>9}",
            "case", "messages", "solves", "cache-hit", "epochs"
        );
        for case in rendered {
            let det = case.get("deterministic").and_then(|d| d.get("report"));
            let field = |name: &str| {
                det.and_then(|r| r.get(name))
                    .and_then(onoc_telemetry::Json::as_f64)
                    .unwrap_or(0.0)
            };
            println!(
                "{:<30} {:>8} {:>10} {:>9.1}% {:>9}",
                case.get("label").and_then(|l| l.as_str()).unwrap_or("?"),
                field("delivered_messages"),
                field("solver_invocations"),
                100.0 * field("cache_hit_rate"),
                field("epochs"),
            );
        }
    }

    let path = default_output_path();
    let body = document.render_pretty();
    if let Err(e) = std::fs::write(&path, body + "\n") {
        eprintln!("FAIL: could not write {}: {e}", path.display());
        std::process::exit(1);
    }

    println!(
        "\nPASS: deterministic sections bit-identical across thread counts {DETERMINISM_THREAD_COUNTS:?}"
    );
    println!("wrote {}", path.display());
}
