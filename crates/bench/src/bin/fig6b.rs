//! Regenerates Fig. 6b: the power / communication-time trade-off for BER
//! targets from 10⁻⁶ to 10⁻¹², with Pareto-front membership per point.

use onoc_bench::{banner, print_table};
use onoc_link::explore::{decade_targets, DesignSpace};
use onoc_link::report::{format_ber, TextTable};

fn main() {
    banner(
        "Fig. 6b",
        "power and performance trade-off wrt. BER and ECC (Pareto plane)",
    );

    let sweep = DesignSpace::paper_sweep();
    let mut table = TextTable::new(vec![
        "BER",
        "scheme",
        "communication time (CT)",
        "P_channel (mW)",
        "pJ/bit",
        "on Pareto front",
    ]);
    for &ber in &decade_targets(6, 12) {
        for point in sweep.pareto_front(ber) {
            table.push_row(vec![
                format_ber(ber),
                point.point.scheme().to_string(),
                format!("{:.2}", point.point.communication_time_factor()),
                format!("{:.1}", point.point.channel_power.value()),
                format!("{:.2}", point.point.energy_per_bit.value()),
                if point.on_front { "yes" } else { "no" }.to_owned(),
            ]);
        }
    }
    print_table(&table);
    println!("Paper observation: for a given BER, all three coding configurations belong to the Pareto front");
    println!("(uncoded is fastest, H(7,4) cheapest in power, H(71,64) in between).");
}
