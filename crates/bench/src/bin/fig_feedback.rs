//! Closed-loop thermal feedback (new to this reproduction, beyond the
//! paper): the interconnect heats itself.  No prescribed temperature trace
//! anywhere — the uncoded laser's own dissipation drives the per-ONI RC
//! network past the uncoded link's collapse, the runtime manager falls back
//! to H(71,64), the coded point burns less power, the nodes cool, and the
//! scheme-revert hysteresis keeps them on the coded path.
//!
//! Run with `cargo run -p onoc-bench --bin fig_feedback`.

use onoc_bench::{banner, default_shards, parallel_map, print_table};
use onoc_link::report::TextTable;
use onoc_link::TrafficClass;
use onoc_sim::traffic::TrafficPattern;
use onoc_sim::{DecisionPolicy, RingVariationConfig, ScenarioBuilder, ScenarioConfig};
use onoc_thermal::{BankTuningMode, RcNetworkParameters, ThermalModelSpec};

fn base_config() -> ScenarioConfig {
    ScenarioBuilder::new()
        .oni_count(12)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 150,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(10.0)
        .nominal_ber(1e-11)
        .seed(17)
        .activity_coupled(RcNetworkParameters::paper_package())
        .policy(DecisionPolicy::epoch_gated())
        .config()
        .clone()
}

fn main() {
    banner(
        "Thermal feedback",
        "activity-driven heating: the link's own dissipation drives the scheme choice",
    );
    let config = base_config();
    let ThermalModelSpec::ActivityCoupled { network } = config.thermal else {
        unreachable!("the base config is activity-coupled");
    };
    let DecisionPolicy::EpochGated {
        epoch_ns,
        quantization_k,
        hysteresis_k,
        revert_hysteresis_k,
    } = config.resolved_policy()
    else {
        unreachable!("the base config is epoch-gated");
    };
    println!(
        "RC package: R_amb = {} K/mW, R_couple = {} K/mW, C = {} pJ/K (tau = {:.0} ns);",
        network.ambient_resistance_k_per_mw,
        network.coupling_resistance_k_per_mw,
        network.heat_capacity_pj_per_k,
        network.time_constant_ns(),
    );
    println!(
        "epoch {epoch_ns} ns, {quantization_k} K decision buckets, {hysteresis_k} K deadband, \
         {revert_hysteresis_k} K revert hysteresis.",
    );
    println!();

    // The homogeneous baseline and the two heterogeneous (sigma = 40 pm)
    // fleets are independent closed-loop runs: evaluate them on parallel
    // shards and merge in order.
    let varied = |mode| {
        ScenarioBuilder::from_config(base_config())
            .variation(RingVariationConfig {
                sigma_nm: 0.040,
                seed: 42,
                mode,
            })
            .config()
            .clone()
    };
    let configs = [
        config,
        varied(BankTuningMode::PureHeater),
        varied(BankTuningMode::full_barrel_shift(16)),
    ];
    let mut reports = parallel_map(&configs, default_shards(), |c| {
        ScenarioBuilder::from_config(c.clone())
            .build()
            .expect("valid feedback scenario")
            .run()
    })
    .into_iter();
    let report = reports.next().expect("three runs were scheduled");
    let fleet_pure = reports.next().expect("three runs were scheduled");
    let fleet_barrel = reports.next().expect("three runs were scheduled");

    // Temperature envelope over time, downsampled for readability.
    let mut table = TextTable::new(vec!["t (ns)", "Tmin (degC)", "Tmax (degC)", "coded ONIs"]);
    let stride = (report.trajectory.len() / 24).max(1);
    for sample in report.trajectory.iter().step_by(stride) {
        table.push_row(vec![
            format!("{:.0}", sample.time_ns),
            format!("{:.1}", sample.min_temperature_c),
            format!("{:.1}", sample.max_temperature_c),
            format!("{}/{}", sample.reconfigured_onis, report.per_oni.len()),
        ]);
    }
    if let Some(last) = report.trajectory.last() {
        table.push_row(vec![
            format!("{:.0}", last.time_ns),
            format!("{:.1}", last.min_temperature_c),
            format!("{:.1}", last.max_temperature_c),
            format!("{}/{}", last.reconfigured_onis, report.per_oni.len()),
        ]);
    }
    print_table(&table);

    println!("Scheme switches (all activity-driven, no prescribed trace):");
    for switch in report.switch_log.iter().take(6) {
        println!(
            "  * ONI {:>2}: {} -> {} at t = {:.0} ns, T = {:.1} degC",
            switch.oni, switch.from, switch.to, switch.time_ns, switch.temperature_c
        );
    }
    if report.switch_log.len() > 6 {
        println!("  * ... and {} more", report.switch_log.len() - 6);
    }
    println!();

    let peak = report
        .trajectory
        .iter()
        .map(|s| s.max_temperature_c)
        .fold(f64::NEG_INFINITY, f64::max);
    let final_max = report
        .trajectory
        .last()
        .map_or(f64::NAN, |s| s.max_temperature_c);
    println!(
        "{} messages, makespan {:.0} ns, {:.2} pJ/bit ({:.0}% static).",
        report.stats.delivered_messages,
        report.stats.makespan_ns,
        report.stats.energy_per_bit_pj(),
        100.0 * report.stats.static_energy_pj / report.stats.energy_pj,
    );
    println!(
        "Peak temperature {peak:.1} degC, final {final_max:.1} degC: switching to {} sheds \
         laser power and the package cools; revert hysteresis holds the coded path.",
        onoc_ecc_codes::EccScheme::Hamming7164,
    );
    println!(
        "Manager re-asks: {} over {} epochs; solver cache: {}.",
        report.decisions, report.epochs, report.solver_cache,
    );

    // Heterogeneous-fleet comparison: every ONI its own chip instance.
    println!();
    println!("Heterogeneous fleets (sigma = 40 pm, per-ONI chips, same traffic):");
    let mut fleet_table = TextTable::new(vec![
        "fleet",
        "pJ/bit",
        "peak T (degC)",
        "switches",
        "solver invocations",
    ]);
    for (label, fleet) in [
        ("homogeneous", &report),
        ("pure-heater", &fleet_pure),
        ("barrel-shift", &fleet_barrel),
    ] {
        let fleet_peak = fleet
            .per_oni
            .iter()
            .map(|o| o.peak_temperature_c)
            .fold(f64::NEG_INFINITY, f64::max);
        fleet_table.push_row(vec![
            label.to_owned(),
            format!("{:.2}", fleet.stats.energy_per_bit_pj()),
            format!("{fleet_peak:.1}"),
            format!("{}", fleet.total_switches()),
            format!("{}", fleet.solver_cache.misses),
        ]);
    }
    print_table(&fleet_table);

    // Acceptance criteria, visible to CI.
    let mut ok = true;
    if report.total_switches() == 0 {
        println!("FAIL: no activity-driven scheme switch observed");
        ok = false;
    }
    if report
        .per_oni
        .iter()
        .any(|o| o.scheme == report.baseline_scheme)
    {
        println!("FAIL: some channels never left the baseline scheme");
        ok = false;
    }
    if report.per_oni.iter().any(|o| o.scheme_switches > 1) {
        println!("FAIL: scheme oscillation detected");
        ok = false;
    }
    if final_max >= peak {
        println!("FAIL: the coded path did not cool the package");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
}
