//! DVFS phase schedules (new to this reproduction, beyond the paper):
//! per-phase wavelength re-assignment against a single worst-case design.
//!
//! A scheduled workload moves a hot compute cluster around the interposer
//! (task migration), so each phase has its own steady-state heat map.  The
//! GLOW-style assigner can either bake one fleet against the **worst-case
//! fold** of those maps — over-rotated for every phase it is not designed
//! for — or derive **one fleet per phase** and let the epoch-gated engine
//! swap assignments hitlessly at phase boundaries.  The binary prices both
//! designs analytically (the assigner's own predicted heater power per
//! phase, integrated over the phase durations) and gates on the per-phase
//! fleet saving at least 15% of the worst-case design's tuning energy.
//!
//! The engine half then pins the runtime contract: a single-phase schedule
//! must be bit-identical to the plain `WorkloadTrace` path at 1 and 4
//! threads, the multi-phase run must be thread-invariant, and every phase
//! transition must land exactly on an epoch edge with at least one ONI
//! hopping to its new-phase assignment.
//!
//! Writes `BENCH_dvfs.json` (deterministic sections separated from
//! wall-clock noise) and exits non-zero on any gate violation, so CI can
//! run it directly.
//!
//! Run with `cargo run -p onoc-bench --bin fig_dvfs`.

use onoc_bench::{banner, print_table};
use onoc_link::report::TextTable;
use onoc_link::{NanophotonicLink, TrafficClass};
use onoc_sim::traffic::TrafficPattern;
use onoc_sim::{
    DecisionPolicy, DesignAssignmentConfig, RingVariationConfig, RunReport, ScenarioBuilder,
    ScenarioConfig,
};
use onoc_telemetry::Json;
use onoc_thermal::{
    AssignmentStrategy, BankTuningMode, RcNetworkParameters, ThermalModelSpec, WorkloadSchedule,
    WorkloadTrace,
};

/// Fleet size of the scheduled scenario.
const ONIS: usize = 12;
/// Phase length of the migration schedule, in ns — a multiple of the 25 ns
/// epoch, so phase boundaries sit exactly on the epoch grid.
const PHASE_NS: f64 = 100.0;
/// The hot cluster's migration path across the interposer.
const CENTERS: [usize; 3] = [2, 6, 10];
/// Peak cluster power at each centre, in mW.
const PEAK_MW: f64 = 300.0;
/// Per-hop decay of the cluster's heat footprint.
const DECAY_PER_HOP: f64 = 0.4;
/// Fabrication σ of the per-ONI ring offsets, in nm.
const SIGMA_NM: f64 = 0.04;
/// Seed of the per-ONI chip instances.
const CHIP_SEED: u64 = 3;
/// Seed of the design-time assigner.
const ASSIGN_SEED: u64 = 7;
/// The CI gate: per-phase fleets must save at least this fraction of the
/// worst-case design's tuning energy.
const MIN_SAVING: f64 = 0.15;
/// Thread counts every engine comparison replays.
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// A package hot enough for the migration maps to force distinct per-phase
/// assignments (the paper default keeps the whole fleet within a rotation).
fn package() -> RcNetworkParameters {
    RcNetworkParameters {
        ambient_resistance_k_per_mw: 0.06,
        ..RcNetworkParameters::paper_package()
    }
}

fn migration() -> WorkloadSchedule {
    WorkloadSchedule::migration(ONIS, PHASE_NS, &CENTERS, PEAK_MW, DECAY_PER_HOP)
}

fn variation() -> RingVariationConfig {
    RingVariationConfig {
        sigma_nm: SIGMA_NM,
        seed: CHIP_SEED,
        mode: BankTuningMode::full_barrel_shift(16),
    }
}

fn builder() -> ScenarioBuilder {
    ScenarioBuilder::new()
        .oni_count(ONIS)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 60,
        })
        .class(TrafficClass::Bulk)
        .words_per_message(16)
        .mean_inter_arrival_ns(5.0)
        .seed(11)
        .variation(variation())
        .policy(DecisionPolicy::epoch_gated())
}

/// Design-time tuning energy of one phase for one ONI, in pJ: the
/// assigner's predicted heater power under `assignment` at that phase's
/// design temperature, integrated over the phase duration.
struct PhaseCost {
    start_ns: f64,
    per_phase_pj: f64,
    worst_case_pj: f64,
}

/// Prices the per-phase and worst-case designs analytically, per phase,
/// fleet-wide.  Entirely deterministic: no traffic, no RNG beyond the
/// seeded chip instances and assigner searches.
fn analytic_phase_costs() -> Vec<PhaseCost> {
    let schedule = migration();
    let spec = ThermalModelSpec::WorkloadScheduled {
        network: package(),
        schedule: schedule.clone(),
    };
    let phase_maps = spec
        .phase_design_temperatures(ONIS)
        .unwrap_or_else(|e| panic!("phase design maps: {e}"));
    let worst_map = spec
        .design_temperatures(ONIS)
        .unwrap_or_else(|e| panic!("worst-case design map: {e}"));
    let design = DesignAssignmentConfig::greedy_refine(ASSIGN_SEED);
    let starts = schedule.phase_starts();
    let mut costs: Vec<PhaseCost> = starts
        .iter()
        .zip(&schedule.phases)
        .map(|(&start_ns, phase)| {
            debug_assert!(phase.duration_ns.is_finite());
            PhaseCost {
                start_ns,
                per_phase_pj: 0.0,
                worst_case_pj: 0.0,
            }
        })
        .collect();
    for oni in 0..ONIS {
        let link = NanophotonicLink::paper_link()
            .with_fabrication_variation(variation().oni_variation(oni));
        let assigner =
            link.wavelength_assigner(AssignmentStrategy::GreedyRefine, design.oni_seed(oni));
        let worst = assigner.assign(&link.ring_bank_state_at(worst_map[oni]));
        for (index, map) in phase_maps.iter().enumerate() {
            let state = link.ring_bank_state_at(map[oni]);
            let dedicated = assigner.assign(&state);
            let duration_ns = schedule.phases[index].duration_ns;
            // µW × ns / 1000 = pJ.
            costs[index].per_phase_pj += assigner
                .predicted_compensation(&state, &dedicated)
                .total_heater_power()
                .value()
                * duration_ns
                / 1000.0;
            costs[index].worst_case_pj += assigner
                .predicted_compensation(&state, &worst)
                .total_heater_power()
                .value()
                * duration_ns
                / 1000.0;
        }
    }
    costs
}

/// Strips the configuration so reports from different configurations
/// (plain traces vs. the equivalent schedule, different thread budgets)
/// compare over everything the run actually produced.
fn comparable(report: &RunReport) -> RunReport {
    let mut report = report.clone();
    report.config = ScenarioConfig::default();
    report
}

fn report_digest(report: &RunReport) -> Json {
    Json::obj(vec![
        ("injected_messages", report.stats.injected_messages.into()),
        ("delivered_messages", report.stats.delivered_messages.into()),
        ("epochs", report.epochs.into()),
        ("decisions", report.decisions.into()),
        ("scheme_switches", report.total_switches().into()),
        ("energy_pj", report.stats.energy_pj.into()),
        ("makespan_ns", report.stats.makespan_ns.into()),
        ("solver_invocations", report.solver_cache.misses.into()),
        (
            "phase_transitions",
            Json::Arr(
                report
                    .phases
                    .iter()
                    .map(|t| {
                        Json::obj(vec![
                            ("phase", t.phase.into()),
                            ("time_ns", t.time_ns.into()),
                            ("epoch", t.epoch.into()),
                            ("swapped_onis", t.swapped_onis.into()),
                            ("storm_switches", t.storm_switches.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn default_output_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_dvfs.json")
}

fn run_at(builder: &ScenarioBuilder, threads: usize) -> (RunReport, u64) {
    // onoc-lint: allow(D002, bench wall clock lands in the quarantined non-deterministic section of BENCH_dvfs.json)
    let started = std::time::Instant::now();
    let report = builder
        .clone()
        .threads(threads)
        .build()
        .unwrap_or_else(|e| panic!("scenario must build: {e}"))
        .run();
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    (report, micros)
}

#[allow(clippy::too_many_lines)]
fn main() {
    banner(
        "DVFS phase schedules",
        "per-phase wavelength re-assignment vs worst-case design -> BENCH_dvfs.json",
    );
    let mut violations: Vec<String> = Vec::new();

    // ---- Analytic design-time comparison -------------------------------
    println!(
        "\n{ONIS} ONIs, {PEAK_MW:.0} mW cluster migrating {CENTERS:?} every {PHASE_NS:.0} ns, \
         sigma {SIGMA_NM} nm:\n"
    );
    let costs = analytic_phase_costs();
    let mut table = TextTable::new(vec![
        "phase",
        "start (ns)",
        "per-phase E_tune (pJ)",
        "worst-case E_tune (pJ)",
    ]);
    for (index, cost) in costs.iter().enumerate() {
        table.push_row(vec![
            index.to_string(),
            format!("{:.0}", cost.start_ns),
            format!("{:.2}", cost.per_phase_pj),
            format!("{:.2}", cost.worst_case_pj),
        ]);
    }
    print_table(&table);
    let per_phase_pj: f64 = costs.iter().map(|c| c.per_phase_pj).sum();
    let worst_case_pj: f64 = costs.iter().map(|c| c.worst_case_pj).sum();
    let saving = 1.0 - per_phase_pj / worst_case_pj;
    println!(
        "  fleet tuning energy: worst-case {worst_case_pj:.2} pJ -> per-phase \
         {per_phase_pj:.2} pJ ({:.1}% saved)",
        saving * 100.0
    );
    if saving < MIN_SAVING {
        violations.push(format!(
            "per-phase fleets save only {:.1}% of the worst-case design's tuning energy \
             (gate: >= {:.0}%)",
            saving * 100.0,
            MIN_SAVING * 100.0
        ));
    }

    // ---- Single-phase pin: the schedule generalizes the trace path -----
    println!("\nsingle-phase pin and multi-phase runs at thread counts {THREAD_COUNTS:?}...\n");
    let traces = WorkloadTrace::hot_cluster(ONIS, CENTERS[0], PEAK_MW, DECAY_PER_HOP);
    let plain_builder = builder()
        .workload_heated(package(), traces.clone())
        .design_assignment(DesignAssignmentConfig::greedy_refine(ASSIGN_SEED));
    let single_builder = builder()
        .workload_scheduled(package(), WorkloadSchedule::single(traces))
        .design_assignment(DesignAssignmentConfig::greedy_refine(ASSIGN_SEED).per_phase());
    let mut wall: Vec<(String, Json)> = Vec::new();
    let mut single_digest = Json::Null;
    for &threads in &THREAD_COUNTS {
        let (plain, plain_micros) = run_at(&plain_builder, threads);
        let (single, single_micros) = run_at(&single_builder, threads);
        wall.push((
            format!("plain_threads_{threads}"),
            Json::Num(plain_micros as f64),
        ));
        wall.push((
            format!("single_phase_threads_{threads}"),
            Json::Num(single_micros as f64),
        ));
        if comparable(&single) != comparable(&plain) {
            violations.push(format!(
                "single-phase schedule diverged from the plain trace engine at \
                 {threads} thread(s)"
            ));
        }
        if !single.phases.is_empty() {
            violations.push("a single-phase schedule must report no transitions".into());
        }
        single_digest = report_digest(&single);
    }

    // ---- Multi-phase run: hitless swaps on epoch edges -----------------
    let scheduled_builder = builder()
        .workload_scheduled(package(), migration())
        .design_assignment(DesignAssignmentConfig::greedy_refine(ASSIGN_SEED).per_phase());
    let mut reference: Option<RunReport> = None;
    for &threads in &THREAD_COUNTS {
        let (report, micros) = run_at(&scheduled_builder, threads);
        wall.push((
            format!("scheduled_threads_{threads}"),
            Json::Num(micros as f64),
        ));
        match &reference {
            None => reference = Some(report),
            Some(baseline) => {
                if comparable(&report) != comparable(baseline) {
                    violations.push(format!(
                        "multi-phase report differs between {} and {threads} threads",
                        THREAD_COUNTS[0]
                    ));
                }
            }
        }
    }
    let reference =
        reference.unwrap_or_else(|| panic!("at least one scheduled run must have completed"));
    if reference.stats.delivered_messages != reference.stats.injected_messages {
        violations.push(format!(
            "scheduled run lost traffic: {} of {} delivered",
            reference.stats.delivered_messages, reference.stats.injected_messages
        ));
    }
    if reference.phases.len() != CENTERS.len() - 1 {
        violations.push(format!(
            "expected {} phase transitions, saw {}",
            CENTERS.len() - 1,
            reference.phases.len()
        ));
    }
    let edges: Vec<u64> = reference
        .trajectory
        .iter()
        .map(|sample| sample.time_ns.to_bits())
        .collect();
    for transition in &reference.phases {
        if (transition.time_ns / PHASE_NS).fract() != 0.0 {
            violations.push(format!(
                "transition at {} ns is off the schedule grid",
                transition.time_ns
            ));
        }
        if !edges.contains(&transition.time_ns.to_bits()) {
            violations.push(format!(
                "transition at {} ns is not an epoch edge of the run",
                transition.time_ns
            ));
        }
    }
    if !reference.phases.iter().any(|t| t.swapped_onis > 0) {
        violations.push("the migrating cluster swapped no assignments at all".into());
    }
    println!(
        "  scheduled run: {} / {} messages, {} epochs, {} transitions \
         (swapped ONIs per boundary: {:?}, storm switches: {:?})",
        reference.stats.delivered_messages,
        reference.stats.injected_messages,
        reference.epochs,
        reference.phases.len(),
        reference
            .phases
            .iter()
            .map(|t| t.swapped_onis)
            .collect::<Vec<_>>(),
        reference
            .phases
            .iter()
            .map(|t| t.storm_switches)
            .collect::<Vec<_>>(),
    );

    // ---- BENCH_dvfs.json -----------------------------------------------
    let phase_sections: Vec<Json> = costs
        .iter()
        .enumerate()
        .map(|(index, cost)| {
            Json::obj(vec![
                ("phase", index.into()),
                ("start_ns", cost.start_ns.into()),
                ("per_phase_tuning_pj", cost.per_phase_pj.into()),
                ("worst_case_tuning_pj", cost.worst_case_pj.into()),
            ])
        })
        .collect();
    let document = Json::obj(vec![
        ("schema_version", 1u64.into()),
        ("onis", ONIS.into()),
        ("phase_ns", PHASE_NS.into()),
        ("peak_mw", PEAK_MW.into()),
        ("sigma_nm", SIGMA_NM.into()),
        ("min_saving", MIN_SAVING.into()),
        (
            "deterministic",
            Json::obj(vec![
                ("phases", Json::Arr(phase_sections)),
                ("per_phase_tuning_pj", per_phase_pj.into()),
                ("worst_case_tuning_pj", worst_case_pj.into()),
                ("tuning_energy_saving", saving.into()),
                ("single_phase_pin", single_digest),
                ("scheduled_run", report_digest(&reference)),
            ]),
        ),
        (
            "non_deterministic",
            Json::obj(vec![("scenario_run_micros", Json::Obj(wall))]),
        ),
    ]);
    let path = default_output_path();
    let body = document.render_pretty();
    if let Err(e) = std::fs::write(&path, body + "\n") {
        violations.push(format!("could not write {}: {e}", path.display()));
    } else {
        println!("\nwrote {}", path.display());
    }

    if violations.is_empty() {
        println!(
            "\nPASS: per-phase fleets save {:.1}% tuning energy (gate {:.0}%); single-phase \
             pin and multi-phase runs bit-identical across thread counts {THREAD_COUNTS:?}",
            saving * 100.0,
            MIN_SAVING * 100.0
        );
    } else {
        for violation in &violations {
            eprintln!("FAIL: {violation}");
        }
        eprintln!("\nFAIL: {} gate violation(s)", violations.len());
        std::process::exit(1);
    }
}
