//! Topology comparison (new to this reproduction, beyond the paper): the
//! paper's single MWSR ring against a banked multi-ring and a hybrid
//! photonic/electrical mesh at equal aggregate bandwidth (12 reader
//! channels × 16 wavelengths each).
//!
//! Per fabric the binary elaborates the photonic link cards
//! ([`TopologyElaborator`]), sweeps the ambient from 25 to 85 °C to locate
//! the temperature at which a latency-first request stops riding the
//! uncoded path and falls back to Hamming(71,64), and sums the fleet
//! ring-tuning power at a hot ambient.  Crosstalk couples each waveguide's
//! thermal drift *and* heater cost to its group population, so splitting
//! one 12-reader waveguide into four 3-reader groups both defers the
//! switch point and buys back tuning power — the binary gates on the
//! latter (multi-ring fleet P_tune strictly below the single ring).  A
//! routed hybrid-mesh scenario then runs at 1 and 4 threads and must be
//! bit-identical, lose no traffic, and relay inter-cluster flows over
//! multiple hops.
//!
//! Writes `BENCH_topology.json` (deterministic sections separated from
//! wall-clock noise) and exits non-zero on any gate violation, so CI can
//! run it directly.
//!
//! Run with `cargo run -p onoc-bench --bin fig_topology`.

use onoc_bench::{banner, default_shards, opt, parallel_map, print_table};
use onoc_ecc_codes::EccScheme;
use onoc_link::report::TextTable;
use onoc_link::{LinkManager, TrafficClass};
use onoc_sim::traffic::TrafficPattern;
use onoc_sim::{DecisionPolicy, RunReport, ScenarioBuilder};
use onoc_telemetry::Json;
use onoc_thermal::RcNetworkParameters;
use onoc_topology::{ElaboratedFabric, FabricSpec, Router, Topology, TopologyElaborator};
use onoc_units::Celsius;

/// Fleet size shared by every fabric under comparison.
const NODES: usize = 12;
/// Per-neighbour crosstalk drift amplification within a waveguide group.
const CROSSTALK_PER_NEIGHBOR: f64 = 0.03;
/// The paper's evaluation BER target.
const TARGET_BER: f64 = 1e-11;
/// Hot ambient at which the fleet tuning power is compared.
const HOT_AMBIENT_C: f64 = 65.0;
/// Thread counts the routed scenario must be bit-identical across.
const SCENARIO_THREAD_COUNTS: [usize; 2] = [1, 4];

struct Fabric {
    name: &'static str,
    spec: FabricSpec,
}

fn fabrics() -> Vec<Fabric> {
    let with_crosstalk =
        |topology: Topology| FabricSpec::new(topology).with_crosstalk(CROSSTALK_PER_NEIGHBOR);
    vec![
        Fabric {
            name: "single_ring(12)",
            spec: with_crosstalk(Topology::single_ring(NODES)),
        },
        Fabric {
            name: "multi_ring(12,4)",
            spec: with_crosstalk(Topology::multi_ring(NODES, 4)),
        },
        Fabric {
            name: "hybrid_mesh(12,4)",
            spec: with_crosstalk(Topology::hybrid_mesh(NODES, 4)),
        },
    ]
}

fn ambient_grid() -> Vec<Celsius> {
    (25..=85)
        .step_by(5)
        .map(|t| Celsius::new(f64::from(t)))
        .collect()
}

/// The first grid ambient at which a latency-first request no longer rides
/// the uncoded path on the fabric's node-0 reader: crosstalk-amplified
/// drift makes the uncoded link infeasible earlier the denser the
/// waveguide group, so the manager falls back to Hamming(71,64) at a lower
/// temperature.
fn switch_point(
    elaborated: &ElaboratedFabric,
    topology: &Topology,
    grid: &[Celsius],
) -> Option<Celsius> {
    let card = elaborated.reader_card(topology, 0)?;
    let manager = LinkManager::new(
        card.model.clone(),
        EccScheme::paper_schemes().to_vec(),
        TARGET_BER,
    );
    // One decision per grid ambient, sharded over the grid; the ordered
    // merge keeps the scan below deterministic.
    let grid_vec = grid.to_vec();
    let schemes = parallel_map(&grid_vec, default_shards(), |&ambient| {
        manager
            .configure_at(TrafficClass::LatencyFirst, ambient)
            .map(|decision| decision.point.scheme())
    });
    grid.iter()
        .zip(&schemes)
        .find(|(_, scheme)| **scheme != Some(EccScheme::Uncoded))
        .map(|(&ambient, _)| ambient)
}

/// Fleet ring-tuning power in mW: every node's reader channel running
/// Hamming(71,64) at `ambient`, all wavelength lanes.
fn fleet_tuning_power_mw(
    elaborated: &ElaboratedFabric,
    topology: &Topology,
    ambient: Celsius,
) -> f64 {
    (0..topology.node_count())
        .filter_map(|node| {
            let card = elaborated.reader_card(topology, node)?;
            let lanes = card.model.power_model().config().wavelength_lanes;
            card.model
                .operating_point_memoized(EccScheme::Hamming7164, TARGET_BER, ambient)
                .ok()
                .map(|point| point.power.tuning.value() * lanes as f64)
        })
        .sum()
}

struct FabricSummary {
    name: &'static str,
    photonic_links: usize,
    electrical_links: usize,
    distinct_stacks: usize,
    max_hops: usize,
    switch_point_c: Option<f64>,
    fleet_tuning_mw: f64,
    solver_invocations: u64,
    cache_hits: u64,
}

fn summarize(fabric: &Fabric, grid: &[Celsius]) -> FabricSummary {
    let elaborated = TopologyElaborator::new()
        .elaborate(&fabric.spec)
        .unwrap_or_else(|e| panic!("{} must elaborate: {e}", fabric.name));
    let topology = &fabric.spec.topology;
    let routes = Router::resolve(topology);
    let switch = switch_point(&elaborated, topology, grid);
    let tuning = fleet_tuning_power_mw(&elaborated, topology, Celsius::new(HOT_AMBIENT_C));
    let counters = elaborated.cards()[0].model.cache_counters();
    FabricSummary {
        name: fabric.name,
        photonic_links: topology.photonic_link_count(),
        electrical_links: topology.electrical_link_count(),
        distinct_stacks: elaborated.distinct_stacks(),
        max_hops: routes.max_hops(),
        switch_point_c: switch.map(|t| t.value()),
        fleet_tuning_mw: tuning,
        solver_invocations: counters.misses,
        cache_hits: counters.hits,
    }
}

/// The routed scenario every thread count replays: uniform traffic over the
/// hybrid mesh, epoch-gated with activity-coupled heating, so inter-cluster
/// flows relay through the electrical hops while the photonic readers heat.
fn routed_builder() -> ScenarioBuilder {
    ScenarioBuilder::new()
        .oni_count(NODES)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 30,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(8)
        .mean_inter_arrival_ns(6.0)
        .nominal_ber(TARGET_BER)
        .seed(47)
        .activity_coupled(RcNetworkParameters::paper_package())
        .policy(DecisionPolicy::epoch_gated())
        .topology(
            FabricSpec::new(Topology::hybrid_mesh(NODES, 4)).with_crosstalk(CROSSTALK_PER_NEIGHBOR),
        )
}

/// A report with the thread budget normalized away — the only field that
/// legitimately differs across the determinism runs.
fn normalized(report: &RunReport) -> RunReport {
    let mut report = report.clone();
    report.config.threads = 0;
    report
}

fn report_digest(report: &RunReport) -> Json {
    Json::obj(vec![
        ("injected_messages", report.stats.injected_messages.into()),
        ("delivered_messages", report.stats.delivered_messages.into()),
        ("hops_traversed", report.stats.hops_traversed.into()),
        ("epochs", report.epochs.into()),
        ("decisions", report.decisions.into()),
        ("scheme_switches", report.total_switches().into()),
        ("energy_pj", report.stats.energy_pj.into()),
        ("makespan_ns", report.stats.makespan_ns.into()),
        ("solver_invocations", report.solver_cache.misses.into()),
    ])
}

fn default_output_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_topology.json")
}

#[allow(clippy::too_many_lines)]
fn main() {
    banner(
        "Topology comparison",
        "single ring vs multi-ring vs hybrid mesh -> BENCH_topology.json",
    );
    let mut violations: Vec<String> = Vec::new();
    let grid = ambient_grid();

    println!(
        "\n{NODES}-node fabrics, crosstalk {CROSSTALK_PER_NEIGHBOR}/neighbour, BER {TARGET_BER:.0e}, \
         fleet P_tune at {HOT_AMBIENT_C:.0} degC:\n"
    );
    let summaries: Vec<FabricSummary> = fabrics()
        .iter()
        .map(|fabric| summarize(fabric, &grid))
        .collect();

    let mut table = TextTable::new(vec![
        "fabric",
        "photonic",
        "electrical",
        "stacks",
        "max hops",
        "switch (degC)",
        "fleet P_tune (mW)",
        "solves",
        "hits",
    ]);
    for s in &summaries {
        table.push_row(vec![
            s.name.to_owned(),
            s.photonic_links.to_string(),
            s.electrical_links.to_string(),
            s.distinct_stacks.to_string(),
            s.max_hops.to_string(),
            opt(s.switch_point_c, 0),
            format!("{:.2}", s.fleet_tuning_mw),
            s.solver_invocations.to_string(),
            s.cache_hits.to_string(),
        ]);
    }
    print_table(&table);

    let single = &summaries[0];
    let multi = &summaries[1];
    if multi.fleet_tuning_mw < single.fleet_tuning_mw {
        let saving = 100.0 * (1.0 - multi.fleet_tuning_mw / single.fleet_tuning_mw);
        println!(
            "  * multi-ring fleet P_tune {:.2} mW < single-ring {:.2} mW ({saving:.1}% saving) \
             at equal aggregate bandwidth",
            multi.fleet_tuning_mw, single.fleet_tuning_mw
        );
    } else {
        violations.push(format!(
            "multi-ring fleet tuning power {:.4} mW is not strictly below the single ring's \
             {:.4} mW",
            multi.fleet_tuning_mw, single.fleet_tuning_mw
        ));
    }

    println!("\nrouted hybrid-mesh scenario at thread counts {SCENARIO_THREAD_COUNTS:?}...\n");
    let builder = routed_builder();
    let runs: Vec<(usize, RunReport, u64)> = SCENARIO_THREAD_COUNTS
        .iter()
        .map(|&threads| {
            // onoc-lint: allow(D002, bench wall clock lands in the quarantined non-deterministic section of BENCH_topology.json)
            let started = std::time::Instant::now();
            let report = builder
                .clone()
                .threads(threads)
                .build()
                .unwrap_or_else(|e| panic!("routed scenario must build: {e}"))
                .run();
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            (threads, report, micros)
        })
        .collect();
    let (_, reference, _) = &runs[0];
    for (threads, report, _) in &runs[1..] {
        if normalized(report) != normalized(reference) {
            violations.push(format!(
                "routed scenario differs between {} and {threads} threads",
                SCENARIO_THREAD_COUNTS[0]
            ));
        }
    }
    if reference.stats.delivered_messages != reference.stats.injected_messages {
        violations.push(format!(
            "routed scenario lost traffic: {} of {} delivered",
            reference.stats.delivered_messages, reference.stats.injected_messages
        ));
    }
    if reference.stats.hops_traversed <= reference.stats.delivered_messages {
        violations.push(format!(
            "inter-cluster flows did not relay: {} hops for {} messages",
            reference.stats.hops_traversed, reference.stats.delivered_messages
        ));
    }
    println!(
        "  delivered {} / {} messages over {} hops in {} epochs",
        reference.stats.delivered_messages,
        reference.stats.injected_messages,
        reference.stats.hops_traversed,
        reference.epochs
    );

    let fabric_sections: Vec<Json> = summaries
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("name", s.name.into()),
                ("photonic_links", s.photonic_links.into()),
                ("electrical_links", s.electrical_links.into()),
                ("distinct_stacks", s.distinct_stacks.into()),
                ("max_hops", s.max_hops.into()),
                (
                    "switch_point_c",
                    s.switch_point_c.map_or(Json::Null, Json::Num),
                ),
                ("fleet_tuning_power_mw", s.fleet_tuning_mw.into()),
                ("solver_invocations", s.solver_invocations.into()),
                ("cache_hits", s.cache_hits.into()),
            ])
        })
        .collect();
    let wall_runs: Vec<(String, Json)> = runs
        .iter()
        .map(|(threads, _, micros)| (format!("threads_{threads}"), Json::Num(*micros as f64)))
        .collect();
    let document = Json::obj(vec![
        ("schema_version", 1u64.into()),
        ("nodes", NODES.into()),
        ("crosstalk_per_neighbor", CROSSTALK_PER_NEIGHBOR.into()),
        ("target_ber", TARGET_BER.into()),
        ("hot_ambient_c", HOT_AMBIENT_C.into()),
        (
            "deterministic",
            Json::obj(vec![
                ("fabrics", Json::Arr(fabric_sections)),
                ("routed_scenario", report_digest(reference)),
            ]),
        ),
        (
            "non_deterministic",
            Json::obj(vec![("scenario_run_micros", Json::Obj(wall_runs))]),
        ),
    ]);
    let path = default_output_path();
    let body = document.render_pretty();
    if let Err(e) = std::fs::write(&path, body + "\n") {
        violations.push(format!("could not write {}: {e}", path.display()));
    } else {
        println!("\nwrote {}", path.display());
    }

    if violations.is_empty() {
        println!(
            "\nPASS: multi-ring P_tune gate holds; routed sections bit-identical across \
             thread counts {SCENARIO_THREAD_COUNTS:?}"
        );
    } else {
        for violation in &violations {
            eprintln!("FAIL: {violation}");
        }
        eprintln!("\nFAIL: {} gate violation(s)", violations.len());
        std::process::exit(1);
    }
}
