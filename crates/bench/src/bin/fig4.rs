//! Regenerates Fig. 4: laser electrical power P_laser as a function of the
//! optical output power OP_laser at 25% chip activity, showing the linear
//! region and the thermally-driven super-linear region.

use onoc_bench::{banner, print_table};
use onoc_link::report::TextTable;
use onoc_photonics::devices::VcselLaser;
use onoc_units::Microwatts;

fn main() {
    banner(
        "Fig. 4",
        "P_laser vs OP_laser for 25% chip activity (thermally limited VCSEL)",
    );

    let laser = VcselLaser::paper_vcsel();
    let mut table = TextTable::new(vec![
        "OP_laser (uW)",
        "P_laser @ 25% activity (mW)",
        "P_laser @ 0% activity (mW)",
        "P_laser @ 100% activity (mW)",
        "efficiency @ 25% (%)",
    ]);
    for step in 0..=14 {
        let op = Microwatts::new(step as f64 * 50.0);
        let p25 = laser.electrical_power(op, 0.25);
        let p0 = laser.electrical_power(op, 0.0);
        let p100 = laser.electrical_power(op, 1.0);
        table.push_row(vec![
            format!("{:.0}", op.value()),
            format!("{:.2}", p25.value()),
            format!("{:.2}", p0.value()),
            format!("{:.2}", p100.value()),
            format!("{:.2}", laser.efficiency(op, 0.25) * 100.0),
        ]);
    }
    print_table(&table);
    println!(
        "Maximum deliverable optical output: {} (the ceiling that makes BER 1e-12 unreachable without ECC).",
        laser.max_output()
    );
    println!("Paper shape: linear within 0-500 uW, then super-linear as the efficiency drops with temperature.");
}
