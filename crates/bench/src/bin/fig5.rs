//! Regenerates Fig. 5: laser electrical power per wavelength as a function of
//! the targeted BER (10⁻³ … 10⁻¹²) for the uncoded, H(71,64) and H(7,4)
//! configurations on the 12-ONI, 16-wavelength MWSR channel.

use onoc_bench::{banner, opt, print_table};
use onoc_ecc_codes::EccScheme;
use onoc_link::explore::DesignSpace;
use onoc_link::report::{format_ber, TextTable};

fn main() {
    banner(
        "Fig. 5",
        "P_laser vs targeted BER for w/o ECC, H(71,64) and H(7,4) (MWSR, 12 ONIs, 16 wavelengths, 6 cm)",
    );

    let sweep = DesignSpace::paper_sweep();
    let rows = sweep.laser_power_sweep();
    let targets = sweep.ber_targets().to_vec();

    let mut header = vec!["scheme".to_owned()];
    header.extend(targets.iter().map(|&b| format_ber(b)));
    let mut table = TextTable::new(header);
    for (scheme, series) in &rows {
        let mut row = vec![scheme.to_string()];
        row.extend(series.iter().map(|&v| format!("{} mW", opt(v, 2))));
        table.push_row(row);
    }
    print_table(&table);

    // Paper anchor points at BER = 1e-11.
    let link = sweep.link();
    let at = |s: EccScheme| {
        link.operating_point(s, 1e-11)
            .map(|p| p.laser.laser_electrical_power.value())
            .ok()
    };
    println!("Anchor points at BER = 1e-11 (paper: 14.3 / 7.12 / 6.64 mW):");
    println!("  w/o ECC  : {} mW", opt(at(EccScheme::Uncoded), 2));
    println!("  H(71,64) : {} mW", opt(at(EccScheme::Hamming7164), 2));
    println!("  H(7,4)   : {} mW", opt(at(EccScheme::Hamming74), 2));
    println!(
        "BER = 1e-12: uncoded transmission is {} (paper: unreachable, exceeds the 700 uW laser ceiling).",
        if link.operating_point(EccScheme::Uncoded, 1e-12).is_err() {
            "NOT reachable"
        } else {
            "reachable"
        }
    );
}
