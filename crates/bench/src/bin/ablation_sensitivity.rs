//! Ablation A2: sensitivity of the laser-power saving to the channel
//! geometry — waveguide length, number of ONIs, number of wavelengths and
//! chip activity.  Shows how robust the paper's ~50% headline saving is.

use onoc_bench::{banner, opt, print_table};
use onoc_ecc_codes::EccScheme;
use onoc_interface::InterfaceConfig;
use onoc_link::report::TextTable;
use onoc_link::NanophotonicLink;
use onoc_photonics::mwsr::ChannelGeometry;
use onoc_photonics::spectrum::WavelengthGrid;
use onoc_photonics::{PaperCalibration, Waveguide};
use onoc_units::{Centimeters, DecibelsPerCentimeter};

struct Variant {
    name: String,
    calibration: PaperCalibration,
    lanes: usize,
}

fn variants() -> Vec<Variant> {
    let mut out = Vec::new();
    let base = PaperCalibration::dac17();
    out.push(Variant {
        name: "paper baseline (12 ONI, 16 wl, 6 cm, 25% act)".into(),
        calibration: base.clone(),
        lanes: 16,
    });
    for &length in &[2.0, 4.0, 8.0] {
        let mut c = base.clone();
        c.geometry.waveguide =
            Waveguide::new(Centimeters::new(length), DecibelsPerCentimeter::new(0.274));
        out.push(Variant {
            name: format!("waveguide length {length} cm"),
            calibration: c,
            lanes: 16,
        });
    }
    for &onis in &[4usize, 8, 16] {
        let mut c = base.clone();
        c.geometry.oni_count = onis;
        out.push(Variant {
            name: format!("{onis} ONIs"),
            calibration: c,
            lanes: 16,
        });
    }
    for &wl in &[8usize, 32] {
        let mut c = base.clone();
        c.geometry = ChannelGeometry {
            grid: WavelengthGrid::paper_grid(wl),
            ..c.geometry
        };
        out.push(Variant {
            name: format!("{wl} wavelengths"),
            calibration: c,
            lanes: wl,
        });
    }
    for &activity in &[0.0, 0.5, 1.0] {
        let mut c = base.clone();
        c.geometry.chip_activity = activity;
        out.push(Variant {
            name: format!("{:.0}% chip activity", activity * 100.0),
            calibration: c,
            lanes: 16,
        });
    }
    out
}

fn main() {
    banner(
        "Ablation A2",
        "sensitivity of the laser power and of the coding gain to the channel geometry",
    );
    let target = 1e-11;
    let mut table = TextTable::new(vec![
        "variant",
        "Plaser w/o ECC (mW)",
        "Plaser H(71,64) (mW)",
        "Plaser H(7,4) (mW)",
        "channel saving w/ H(7,4) (%)",
    ]);
    for variant in variants() {
        let mut interface = InterfaceConfig::paper_default();
        interface.wavelength_lanes = variant.lanes;
        let link = NanophotonicLink::new(variant.calibration, interface);
        let solve = |s: EccScheme| link.operating_point(s, target).ok();
        let uncoded = solve(EccScheme::Uncoded);
        let h7164 = solve(EccScheme::Hamming7164);
        let h74 = solve(EccScheme::Hamming74);
        let saving = match (&uncoded, &h74) {
            (Some(u), Some(c)) => {
                Some(100.0 * (1.0 - c.channel_power.value() / u.channel_power.value()))
            }
            _ => None,
        };
        table.push_row(vec![
            variant.name,
            opt(uncoded.map(|p| p.laser.laser_electrical_power.value()), 2),
            opt(h7164.map(|p| p.laser.laser_electrical_power.value()), 2),
            opt(h74.map(|p| p.laser.laser_electrical_power.value()), 2),
            opt(saving, 1),
        ]);
    }
    print_table(&table);
    println!("'--' marks configurations where the laser ceiling makes the uncoded (or coded) point infeasible.");
    println!("Expected shape: longer waveguides / more ONIs push the uncoded link towards infeasibility first,");
    println!("so the relative benefit of coding grows with the channel size.");
}
