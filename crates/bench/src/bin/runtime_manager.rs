//! Scenario R1: the run-time energy/performance manager of Section III-C
//! exercised on the event-driven NoC simulator — real-time, bulk and
//! multimedia traffic mixes on the same interconnect, with the resulting
//! latency / energy / deadline statistics.

use onoc_bench::{banner, print_table};
use onoc_link::report::TextTable;
use onoc_link::TrafficClass;
use onoc_sim::traffic::TrafficPattern;
use onoc_sim::{RunReport, ScenarioBuilder};

fn run(
    class: TrafficClass,
    pattern: TrafficPattern,
    deadline: Option<f64>,
) -> Option<(String, RunReport)> {
    let label = format!("{class:?} / {pattern:?}");
    ScenarioBuilder::new()
        .oni_count(12)
        .pattern(pattern)
        .class(class)
        .words_per_message(16)
        .mean_inter_arrival_ns(4.0)
        .deadline_slack_ns(deadline)
        .nominal_ber(1e-11)
        .seed(2024)
        .build()
        .ok()
        .map(|scenario| (label, scenario.run()))
}

fn main() {
    banner(
        "Scenario R1",
        "run-time manager on the optical NoC simulator (12 ONIs)",
    );

    let scenarios = vec![
        run(
            TrafficClass::RealTime,
            TrafficPattern::NearestNeighbor {
                messages_per_node: 40,
            },
            Some(60.0),
        ),
        run(
            TrafficClass::Bulk,
            TrafficPattern::UniformRandom {
                messages_per_node: 40,
            },
            None,
        ),
        run(
            TrafficClass::Multimedia,
            TrafficPattern::Streaming {
                source: 0,
                destination: 6,
                bursts: 10,
                burst_messages: 24,
            },
            None,
        ),
        run(
            TrafficClass::Bulk,
            TrafficPattern::Hotspot {
                destination: 3,
                messages_per_node: 40,
            },
            None,
        ),
    ];

    let mut table = TextTable::new(vec![
        "scenario",
        "scheme picked",
        "Pchannel (mW)",
        "mean latency (ns)",
        "max latency (ns)",
        "throughput (Gb/s)",
        "energy (pJ/bit)",
        "deadline misses",
    ]);
    for scenario in scenarios.into_iter().flatten() {
        let (label, report) = scenario;
        table.push_row(vec![
            label,
            report.baseline_scheme.to_string(),
            format!("{:.1}", report.baseline_channel_power_mw),
            format!("{:.1}", report.stats.mean_latency_ns()),
            format!("{:.1}", report.stats.max_latency_ns),
            format!("{:.1}", report.stats.throughput_gbps()),
            format!("{:.2}", report.stats.energy_per_bit_pj()),
            report.stats.deadline_misses.to_string(),
        ]);
    }
    print_table(&table);
    println!("Expected shape: real-time traffic runs uncoded (lowest latency, highest power);");
    println!("bulk and multimedia traffic run on the Hamming-coded, lower-power operating points.");
}
