//! Fabrication-variation sweep (new to this reproduction, beyond the
//! paper): per-ring resonance offsets sampled at σ ∈ {0, 10, 40, 80 pm}
//! crossed with chip temperatures of 25–85 °C, comparing the **pure-heater**
//! tuning policy (every ring heats its full offset) against **barrel-shift
//! channel hopping** (re-map logical wavelengths to the nearest-resonant
//! rings, heat only the residual — cf. Cooling Codes / GLOW).
//!
//! The (σ, T) grid is evaluated with one temperature chunk per thread and an
//! ordered merge, so the table is deterministic.
//!
//! Run with `cargo run -p onoc-bench --bin fig_variation`.

use onoc_bench::{banner, default_shards, opt, parallel_map, print_table};
use onoc_ecc_codes::EccScheme;
use onoc_link::report::TextTable;
use onoc_link::{LinkManager, NanophotonicLink, TrafficClass};
use onoc_thermal::{BankTuningMode, FabricationVariation};
use onoc_units::Celsius;

/// One evaluated grid cell: tuning power and scheme under both policies.
struct Cell {
    sigma_nm: f64,
    temperature: Celsius,
    pure_tuning_mw: Option<f64>,
    barrel_tuning_mw: Option<f64>,
    barrel_shift: i64,
    pure_scheme: Option<EccScheme>,
    barrel_scheme: Option<EccScheme>,
}

const CHIP_SEED: u64 = 42;

fn sigmas_nm() -> [f64; 4] {
    [0.0, 0.010, 0.040, 0.080]
}

fn temperatures() -> Vec<Celsius> {
    (25..=85)
        .step_by(10)
        .map(|t| Celsius::new(f64::from(t)))
        .collect()
}

fn chip_pair(sigma_nm: f64) -> (LinkManager, LinkManager) {
    let variation = FabricationVariation::new(sigma_nm, CHIP_SEED);
    let pure = NanophotonicLink::paper_link().with_fabrication_variation(variation);
    let barrel = NanophotonicLink::paper_link()
        .with_fabrication_variation(variation)
        .with_bank_tuning_mode(BankTuningMode::full_barrel_shift(16));
    (
        LinkManager::new(pure, EccScheme::paper_schemes().to_vec(), 1e-11),
        LinkManager::new(barrel, EccScheme::paper_schemes().to_vec(), 1e-11),
    )
}

fn evaluate(managers: &(LinkManager, LinkManager), sigma_nm: f64, temperature: Celsius) -> Cell {
    let (pure, barrel) = managers;
    let solve = |manager: &LinkManager| {
        manager
            .link()
            .operating_point_at(EccScheme::Hamming7164, 1e-11, temperature)
            .ok()
    };
    let p = solve(pure);
    let b = solve(barrel);
    Cell {
        sigma_nm,
        temperature,
        pure_tuning_mw: p.as_ref().map(|p| p.power.tuning.value()),
        barrel_tuning_mw: b.as_ref().map(|b| b.power.tuning.value()),
        barrel_shift: b.as_ref().map_or(0, |b| b.thermal.barrel_shift),
        pure_scheme: pure
            .configure_at(TrafficClass::LatencyFirst, temperature)
            .map(|d| d.point.scheme()),
        barrel_scheme: barrel
            .configure_at(TrafficClass::LatencyFirst, temperature)
            .map(|d| d.point.scheme()),
    }
}

fn main() {
    banner(
        "Variation sweep",
        "per-ring fabrication offsets: pure-heater vs barrel-shift tuning, H(71,64), BER = 1e-11",
    );
    println!(
        "Chip seed {CHIP_SEED}; tuning power per lane of 12 rings; LatencyFirst scheme choice."
    );
    println!();

    // Build both chip instances per σ once, then fan the (σ, T) grid out
    // across threads (one cell per work item, ordered merge).
    let fleets: Vec<(f64, (LinkManager, LinkManager))> = sigmas_nm()
        .into_iter()
        .map(|sigma| (sigma, chip_pair(sigma)))
        .collect();
    let grid: Vec<(usize, Celsius)> = (0..fleets.len())
        .flat_map(|f| temperatures().into_iter().map(move |t| (f, t)))
        .collect();
    let cells = parallel_map(&grid, default_shards(), |&(f, t)| {
        let (sigma, managers) = &fleets[f];
        evaluate(managers, *sigma, t)
    });

    let mut table = TextTable::new(vec![
        "sigma (pm)",
        "T (degC)",
        "Ptune pure (mW/wl)",
        "Ptune barrel (mW/wl)",
        "shift (rings)",
        "LatencyFirst pure",
        "LatencyFirst barrel",
    ]);
    for cell in &cells {
        table.push_row(vec![
            format!("{:.0}", cell.sigma_nm * 1000.0),
            format!("{:.0}", cell.temperature.value()),
            opt(cell.pure_tuning_mw, 3),
            opt(cell.barrel_tuning_mw, 3),
            format!("{:+}", cell.barrel_shift),
            cell.pure_scheme
                .map_or_else(|| "(unservable)".to_owned(), |s| s.to_string()),
            cell.barrel_scheme
                .map_or_else(|| "(unservable)".to_owned(), |s| s.to_string()),
        ]);
    }
    print_table(&table);

    // Scheme-switch points per σ and policy.
    for (sigma, _) in &fleets {
        for (label, pick) in [("pure-heater", 0usize), ("barrel-shift", 1usize)] {
            let mut previous: Option<EccScheme> = None;
            for cell in cells.iter().filter(|c| c.sigma_nm == *sigma) {
                let scheme = if pick == 0 {
                    cell.pure_scheme
                } else {
                    cell.barrel_scheme
                };
                if let (Some(before), Some(after)) = (previous, scheme) {
                    if before != after {
                        println!(
                            "  * sigma {:.0} pm, {label}: LatencyFirst switches {before} -> {after} by {:.0} degC",
                            sigma * 1000.0,
                            cell.temperature.value()
                        );
                    }
                }
                previous = scheme;
            }
        }
    }
    println!();
    println!("Expected shape: barrel shifting is a no-op below half a grid spacing of drift");
    println!("(T < 30 degC) and then hops 1 ring per 8 K, leaving only the sub-spacing");
    println!("residual plus the fabrication offsets for the heaters.");

    // Acceptance gate for CI: at sigma = 40 pm the barrel-shift policy must
    // spend measurably less tuning power than pure heating at >= 55 degC.
    let mut violations = 0;
    for cell in cells
        .iter()
        .filter(|c| (c.sigma_nm - 0.040).abs() < 1e-12 && c.temperature.value() >= 55.0)
    {
        match (cell.pure_tuning_mw, cell.barrel_tuning_mw) {
            (Some(pure), Some(barrel)) if barrel < 0.5 * pure => {}
            (pure, barrel) => {
                println!(
                    "  ! violation at {:.0} degC: pure {pure:?} mW, barrel {barrel:?} mW",
                    cell.temperature.value()
                );
                violations += 1;
            }
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
}
