//! Thermal sweep (new to this reproduction, beyond the paper): per-scheme
//! laser + modulation + coding + **tuning** power as the chip heats from the
//! paper's 25 °C evaluation point up to 85 °C, plus the runtime manager's
//! scheme selection per traffic class at each temperature.
//!
//! Run with `cargo run -p onoc-bench --bin fig_thermal`.

use onoc_bench::{banner, default_shards, opt, parallel_map, print_table};
use onoc_ecc_codes::EccScheme;
use onoc_link::report::TextTable;
use onoc_link::{LinkManager, NanophotonicLink, TrafficClass};
use onoc_units::Celsius;

fn temperatures() -> Vec<Celsius> {
    (25..=85)
        .step_by(10)
        .map(|t| Celsius::new(f64::from(t)))
        .collect()
}

fn power_sweep(link: &NanophotonicLink) {
    let mut table = TextTable::new(vec![
        "T (degC)",
        "scheme",
        "Plaser (mW/wl)",
        "Ptune (mW/wl)",
        "drift (nm)",
        "residual (nm)",
        "channel power, 16 wl (mW)",
        "pJ/bit",
    ]);
    // One temperature chunk per thread; the merge is ordered, so the table
    // is identical to the serial sweep.
    let temperatures = temperatures();
    let rows = parallel_map(&temperatures, default_shards(), |&t| {
        EccScheme::paper_schemes()
            .into_iter()
            .map(|scheme| match link.operating_point_at(scheme, 1e-11, t) {
                Ok(p) => vec![
                    format!("{:.0}", t.value()),
                    scheme.to_string(),
                    format!("{:.2}", p.power.laser.value()),
                    format!("{:.2}", p.power.tuning.value()),
                    format!("{:+.3}", p.thermal.free_drift.nanometers()),
                    format!("{:+.4}", p.thermal.residual_drift.nanometers()),
                    format!("{:.1}", p.channel_power.value()),
                    format!("{:.2}", p.energy_per_bit.value()),
                ],
                Err(_) => vec![
                    format!("{:.0}", t.value()),
                    scheme.to_string(),
                    opt(None, 2),
                    opt(None, 2),
                    opt(None, 3),
                    opt(None, 4),
                    "infeasible".to_owned(),
                    opt(None, 2),
                ],
            })
            .collect::<Vec<_>>()
    });
    for row in rows.into_iter().flatten() {
        table.push_row(row);
    }
    print_table(&table);
}

fn manager_sweep() -> bool {
    let manager = LinkManager::paper_manager();
    let mut table = TextTable::new(vec![
        "T (degC)",
        "RealTime",
        "LatencyFirst",
        "Bulk",
        "Multimedia",
    ]);
    // Evaluate each temperature's class decisions on its own shard; the
    // switch detection below needs consecutive rows, so it stays serial
    // over the ordered merge.
    let temperatures = temperatures();
    let decisions = parallel_map(&temperatures, default_shards(), |&t| {
        TrafficClass::all()
            .into_iter()
            .map(|class| manager.configure_at(class, t).map(|d| d.point.scheme()))
            .collect::<Vec<_>>()
    });
    let mut switches: Vec<String> = Vec::new();
    let mut previous: Vec<Option<EccScheme>> = vec![None; TrafficClass::all().len()];
    for (&t, row_schemes) in temperatures.iter().zip(&decisions) {
        let mut row = vec![format!("{:.0}", t.value())];
        for ((slot, class), &scheme) in TrafficClass::all().into_iter().enumerate().zip(row_schemes)
        {
            row.push(scheme.map_or_else(|| "(unservable)".to_owned(), |s| s.to_string()));
            if let (Some(before), Some(after)) = (previous[slot], scheme) {
                if before != after {
                    switches.push(format!(
                        "{class:?} switches {before} -> {after} by {:.0} degC",
                        t.value()
                    ));
                }
            }
            previous[slot] = scheme;
        }
        table.push_row(row);
    }
    print_table(&table);
    for line in &switches {
        println!("  * {line}");
    }
    if switches.is_empty() {
        println!("  * no scheme switches observed (unexpected)");
    }
    !switches.is_empty()
}

fn main() {
    banner(
        "Thermal sweep",
        "laser + tuning power vs chip temperature per scheme, BER = 1e-11",
    );
    let link = NanophotonicLink::paper_link();
    power_sweep(&link);
    println!("Model: ring drift 0.1 nm/K from the 25 degC calibration; adaptive tune-vs-tolerate");
    println!("with 12 uW/K heaters per ring (12 rings/lane); laser efficiency falls with ambient.");
    println!();
    println!("Runtime manager selection per traffic class:");
    let switched = manager_sweep();
    println!("Expected shape: total power per scheme is monotone non-decreasing in temperature;");
    println!("the uncoded link dies between 50 and 55 degC, so LatencyFirst traffic switches");
    println!("from 'w/o ECC' to H(71,64) and hard RealTime traffic becomes unservable.");
    if !switched {
        // The sweep's acceptance criterion failed; make it visible to CI.
        std::process::exit(1);
    }
}
