//! Shared helpers for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary in `src/bin/` that prints the regenerated rows/series:
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `table1` | Table I — interface synthesis results |
//! | `fig3` | Fig. 3 — MR transmission spectrum (ON/OFF) |
//! | `fig4` | Fig. 4 — laser electrical power vs optical output |
//! | `fig5` | Fig. 5 — laser power vs target BER per scheme |
//! | `fig6a` | Fig. 6a — channel power breakdown at BER 10⁻¹¹ |
//! | `fig6b` | Fig. 6b — power/performance Pareto trade-off |
//! | `ablation_codes` | code-length ablation (A1) |
//! | `ablation_sensitivity` | geometry/activity sensitivity (A2) |
//! | `runtime_manager` | run-time manager scenario on the NoC simulator (R1) |
//! | `fig_thermal` | 25–85 °C sweep: power per scheme + manager switching (beyond the paper) |
//! | `fig_feedback` | closed-loop activity-driven heating demonstration (beyond the paper) |
//! | `fig_variation` | σ × temperature sweep: pure-heater vs barrel-shift tuning (beyond the paper) |
//! | `fig_assignment` | design-time (GLOW-style) wavelength assignment vs identity (beyond the paper) |
//! | `fig_topology` | single ring vs multi-ring vs hybrid mesh → `BENCH_topology.json` (beyond the paper) |
//! | `perf_trajectory` | telemetry-instrumented scaling matrix → `BENCH_scaling.json` (beyond the paper) |
//!
//! Criterion micro-benchmarks (`benches/`) measure codec throughput, the
//! link-solver latency, the simulator event rate and the memoized
//! operating-point cache (`op_cache`).
//!
//! Sweep binaries evaluate their temperature grids with [`parallel_map`]:
//! contiguous shards across `std::thread` workers, merged back in input
//! order, so the printed tables stay deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use onoc_link::report::TextTable;

// The ordered-merge parallel map moved to `onoc-parallel` so the simulator's
// epoch engine can shard per-ONI work without depending on this crate; the
// sweep binaries keep using it through this re-export.
pub use onoc_parallel::{default_shards, parallel_map};

/// Prints a standard banner naming the regenerated artefact.
pub fn banner(artifact: &str, description: &str) {
    println!("================================================================");
    println!("{artifact}: {description}");
    println!("(reproduction of 'Energy and Performance Trade-off in Nanophotonic");
    println!(" Interconnects using Coding Techniques', DAC 2017)");
    println!("================================================================");
}

/// Prints a table with a trailing blank line.
pub fn print_table(table: &TextTable) {
    println!("{table}");
}

/// Formats an optional value, printing `--` for `None` (infeasible points).
#[must_use]
pub fn opt(value: Option<f64>, precision: usize) -> String {
    value.map_or_else(|| "--".to_owned(), |v| format!("{v:.precision$}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_formats_values_and_placeholders() {
        assert_eq!(opt(Some(1.234), 2), "1.23");
        assert_eq!(opt(None, 2), "--");
    }

    #[test]
    fn parallel_map_is_re_exported() {
        // The implementation (and its ordering property tests) live in
        // `onoc-parallel`; this pin keeps the bench-facing path alive.
        let items: Vec<u64> = (0..10).collect();
        let expected: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(parallel_map(&items, 4, |&x| x + 1), expected);
        assert!(default_shards() >= 1);
    }
}
