//! The perf-trajectory harness behind `cargo run -p onoc-bench --bin
//! perf_trajectory`.
//!
//! Runs a fixed scenario matrix (fleet size × decision policy × fabrication
//! variation) with an [`onoc_telemetry::RegistryRecorder`] attached, and
//! assembles the `BENCH_scaling.json` artifact the ROADMAP asks for: one
//! entry per scenario with a **deterministic** section (event counters,
//! histograms and report facts that must be bit-identical across repeated
//! runs and thread counts) and a **non-deterministic** section (wall-clock
//! timings, machine-speed dependent by nature).
//!
//! Determinism is self-gated: every scenario runs once per thread count in
//! [`DETERMINISM_THREAD_COUNTS`] and the harness fails loudly if either the
//! deterministic metrics or the full [`RunReport`] differ.

use std::path::Path;
use std::sync::Arc;

use onoc_link::{CacheCounters, TrafficClass};
use onoc_sim::traffic::TrafficPattern;
use onoc_sim::{
    DecisionPolicy, DesignAssignmentConfig, RingVariationConfig, RunReport, ScenarioBuilder,
    ScenarioConfig,
};
use onoc_telemetry::{
    Json, MetricsRegistry, MetricsSnapshot, RecorderHandle, RegistryRecorder, WallClockRegistry,
};
use onoc_thermal::{BankTuningMode, RcNetworkParameters, ThermalEnvironment, WorkloadTrace};
use onoc_units::Celsius;

/// Version tag of the `BENCH_scaling.json` schema.
pub const SCHEMA_VERSION: u64 = 1;

/// Thread counts every scenario is re-run at; the deterministic sections
/// must be bit-identical across all of them.
pub const DETERMINISM_THREAD_COUNTS: [usize; 2] = [1, 4];

/// Fleet sizes of the default matrix.
pub const DEFAULT_FLEET_SIZES: [usize; 3] = [4, 8, 12];

/// Messages per source node in the default matrix.
pub const DEFAULT_MESSAGES_PER_NODE: u64 = 60;

/// One prepared scenario of the matrix.
pub struct TrajectoryCase {
    /// Unique case label, e.g. `epoch-variation-barrel/oni8`.
    pub label: String,
    /// Policy family, `per-message` or `epoch-gated`.
    pub policy: &'static str,
    /// Fleet size.
    pub oni_count: usize,
    /// The full configuration (thread budget is overridden per run).
    pub config: ScenarioConfig,
}

fn base_builder(oni_count: usize, messages_per_node: u64) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .oni_count(oni_count)
        .pattern(TrafficPattern::UniformRandom { messages_per_node })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(10.0)
        .nominal_ber(1e-11)
        .seed(17)
}

/// The scenario matrix over the given fleet sizes: per-message over the
/// paper ambient, per-message over a static hotspot gradient, epoch-gated
/// activity-coupled (homogeneous fleet, shared solver cache), and
/// epoch-gated activity-coupled with per-ONI fabrication variation under
/// barrel-shift tuning (heterogeneous fleet, sharded re-asks).
#[must_use]
pub fn scenario_matrix_with(fleet_sizes: &[usize], messages_per_node: u64) -> Vec<TrajectoryCase> {
    let mut cases = Vec::new();
    for &n in fleet_sizes {
        let flavors: [(&str, &str, ScenarioBuilder); 4] = [
            (
                "per-message-ambient",
                "per-message",
                base_builder(n, messages_per_node),
            ),
            (
                "per-message-hotspot",
                "per-message",
                base_builder(n, messages_per_node).prescribed(ThermalEnvironment::Hotspot {
                    base: Celsius::new(25.0),
                    peak: Celsius::new(55.0),
                    center: 0,
                    decay_per_hop: 0.5,
                }),
            ),
            (
                "epoch-activity",
                "epoch-gated",
                base_builder(n, messages_per_node)
                    .activity_coupled(RcNetworkParameters::paper_package())
                    .policy(DecisionPolicy::epoch_gated()),
            ),
            (
                "epoch-variation-barrel",
                "epoch-gated",
                base_builder(n, messages_per_node)
                    .activity_coupled(RcNetworkParameters::paper_package())
                    .policy(DecisionPolicy::epoch_gated())
                    .variation(RingVariationConfig {
                        sigma_nm: 0.040,
                        seed: 42,
                        mode: BankTuningMode::full_barrel_shift(16),
                    })
                    .design_assignment(DesignAssignmentConfig::greedy_refine(7)),
            ),
        ];
        for (flavor, policy, builder) in flavors {
            cases.push(TrajectoryCase {
                label: format!("{flavor}/oni{n}"),
                policy,
                oni_count: n,
                config: builder.config().clone(),
            });
        }
    }
    cases
}

/// The default matrix: [`DEFAULT_FLEET_SIZES`] ×
/// [`DEFAULT_MESSAGES_PER_NODE`] messages per node.
#[must_use]
pub fn scenario_matrix() -> Vec<TrajectoryCase> {
    scenario_matrix_with(&DEFAULT_FLEET_SIZES, DEFAULT_MESSAGES_PER_NODE)
}

/// Outcome of one scenario at one thread count.
pub struct CaseRun {
    /// The simulation report (recorder-independent, thread-independent).
    pub report: RunReport,
    /// Deterministic registry contents fed by the run's events.
    pub metrics: MetricsSnapshot,
    /// Non-deterministic per-shard wall-clock aggregates, rendered.
    pub wall_clock: Json,
    /// End-to-end wall clock of build + run, in microseconds.
    pub run_micros: u64,
}

/// Runs one case at the given thread budget with a fresh registry recorder.
///
/// # Panics
///
/// Panics if the configuration fails to build (the matrix only contains
/// valid configurations).
#[must_use]
pub fn run_case(case: &TrajectoryCase, threads: usize) -> CaseRun {
    let metrics = Arc::new(MetricsRegistry::new());
    let wall = Arc::new(WallClockRegistry::new());
    let recorder = RecorderHandle::new(Arc::new(RegistryRecorder::new(
        metrics.clone(),
        wall.clone(),
    )));
    // onoc-lint: allow(D002, bench wall clock lands in the quarantined non-deterministic section of BENCH_scaling.json)
    let started = std::time::Instant::now();
    let report = ScenarioBuilder::from_config(case.config.clone())
        .threads(threads)
        .telemetry(recorder)
        .build()
        .unwrap_or_else(|e| panic!("case {} must build: {e}", case.label))
        .run();
    let run_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    CaseRun {
        report,
        metrics: metrics.snapshot(),
        wall_clock: wall.to_json(),
        run_micros,
    }
}

/// The deterministic facts of a report the artifact exposes for gating —
/// a digest, not the full report, so the JSON stays diffable by eye.
fn report_digest(report: &RunReport) -> Json {
    Json::obj(vec![
        ("delivered_messages", report.stats.delivered_messages.into()),
        ("epochs", report.epochs.into()),
        ("decisions", report.decisions.into()),
        ("infeasible_requests", report.infeasible_requests.into()),
        ("scheme_switches", report.total_switches().into()),
        ("solver_invocations", report.solver_cache.misses.into()),
        ("cache_hits", report.solver_cache.hits.into()),
        ("cache_hit_rate", report.solver_cache.hit_rate().into()),
        ("reconfigured_messages", report.reconfigured_messages.into()),
    ])
}

/// Runs the whole matrix at every thread count in
/// [`DETERMINISM_THREAD_COUNTS`] and assembles the `BENCH_scaling.json`
/// document.
///
/// # Errors
///
/// One line per determinism violation: a case whose deterministic metrics
/// or whose full report differed between thread counts.
pub fn build_document(cases: &[TrajectoryCase]) -> Result<Json, Vec<String>> {
    let mut failures = Vec::new();
    let mut rendered_cases = Vec::new();
    for case in cases {
        let runs: Vec<(usize, CaseRun)> = DETERMINISM_THREAD_COUNTS
            .iter()
            .map(|&threads| (threads, run_case(case, threads)))
            .collect();
        let (reference_threads, reference) = &runs[0];
        // The report embeds the simulated configuration, whose thread
        // budget legitimately differs between runs; everything else must
        // match bit-for-bit.
        let normalized = |run: &CaseRun| {
            let mut report = run.report.clone();
            report.config.threads = 0;
            report
        };
        let reference_report = normalized(reference);
        for (threads, run) in &runs[1..] {
            if run.metrics != reference.metrics {
                failures.push(format!(
                    "{}: deterministic metrics differ between {reference_threads} and {threads} \
                     threads",
                    case.label
                ));
            }
            if normalized(run) != reference_report {
                failures.push(format!(
                    "{}: run report differs between {reference_threads} and {threads} threads",
                    case.label
                ));
            }
        }
        let wall_runs: Vec<(String, Json)> = runs
            .iter()
            .map(|(threads, run)| {
                (
                    format!("threads_{threads}"),
                    Json::obj(vec![
                        ("run_micros", run.run_micros.into()),
                        ("shards", run.wall_clock.clone()),
                    ]),
                )
            })
            .collect();
        rendered_cases.push(Json::obj(vec![
            ("label", case.label.as_str().into()),
            ("policy", case.policy.into()),
            ("oni_count", case.oni_count.into()),
            (
                "deterministic",
                Json::obj(vec![
                    ("report", report_digest(&reference.report)),
                    ("metrics", reference.metrics.to_json()),
                ]),
            ),
            ("non_deterministic", Json::Obj(wall_runs)),
        ]));
    }
    if !failures.is_empty() {
        return Err(failures);
    }
    Ok(Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.into()),
        ("bench", "perf_trajectory".into()),
        (
            "determinism",
            Json::obj(vec![
                (
                    "verified_thread_counts",
                    Json::Arr(
                        DETERMINISM_THREAD_COUNTS
                            .iter()
                            .map(|&t| Json::from(t))
                            .collect(),
                    ),
                ),
                ("status", "ok".into()),
            ]),
        ),
        ("cases", Json::Arr(rendered_cases)),
    ]))
}

// ---------------------------------------------------------------------------
// Scale-out: the shared concurrent operating-point cache at fleet scale.
// ---------------------------------------------------------------------------

/// Fleet size of the headline scale-out case.
pub const SCALE_OUT_ONI_COUNT: usize = 10_000;

/// Messages per source node of the headline case (`10_000 × 200` = two
/// million messages end to end).
pub const SCALE_OUT_MESSAGES_PER_NODE: u64 = 200;

/// Peak per-ONI workload injection of the fleet-wide power ramp, in mW.
/// With the paper package's 0.10 K/mW ambient resistance the hottest ONI
/// settles 30 K above the coldest, so the fleet walks a wide band of
/// distinct decision buckets while staying inside the laser's solvable
/// envelope (the VCSEL model runs away thermally near 85 °C).
pub const SCALE_OUT_MAX_WORKLOAD_MW: f64 = 300.0;

/// Decision-bucket width of the headline case, in kelvin.  Small on purpose:
/// the run must be solver-bound (~80k distinct-bucket solves, >90 % of the
/// single-thread run phase) so the shared cache — one solve per distinct
/// bucket, fleet-wide — is what makes thread scaling possible.
pub const SCALE_OUT_QUANTIZATION_K: f64 = 0.003;

/// Thread counts the headline case is measured at.  The deterministic
/// section must be bit-identical across all of them; the last entry is the
/// one the speedup floor compares against single-threaded.
pub const SCALE_OUT_THREAD_COUNTS: [usize; 2] = [1, 4];

/// Minimum single-thread → max-thread run-phase speedup, enforced only when
/// the host actually has that many cores.
pub const SCALE_OUT_SPEEDUP_FLOOR: f64 = 2.0;

/// Fleet size of the reduced cross-engine and snapshot demonstrations.
/// Per-link caches re-solve every bucket once per ONI, so the A/B
/// comparison runs at a size where that waste is affordable — the waste
/// itself is the headline number ([`build_scale_out_section`] reports the
/// solve ratio).
pub const SCALE_OUT_REDUCED_ONI_COUNT: usize = 64;

/// Messages per node of the reduced demonstrations.
pub const SCALE_OUT_REDUCED_MESSAGES_PER_NODE: u64 = 40;

/// Decision-bucket width of the reduced demonstrations, in kelvin.  Coarse
/// so the persisted snapshot artifact stays a few hundred entries.
pub const SCALE_OUT_REDUCED_QUANTIZATION_K: f64 = 0.25;

/// The homogeneous scale-out scenario: every ONI runs the same link design
/// (one manager, one shared operating-point cache) while a linear per-ONI
/// workload ramp spreads the fleet across a wide temperature band.  The
/// cache resolution is locked to the decision quantization (`1/q` buckets
/// per kelvin) so decision buckets and cache keys coincide one-to-one.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn scale_out_builder(
    oni_count: usize,
    messages_per_node: u64,
    quantization_k: f64,
) -> ScenarioBuilder {
    let top = oni_count.saturating_sub(1).max(1) as f64;
    let traces = (0..oni_count)
        .map(|oni| WorkloadTrace::constant(SCALE_OUT_MAX_WORKLOAD_MW * oni as f64 / top))
        .collect();
    ScenarioBuilder::new()
        .oni_count(oni_count)
        .pattern(TrafficPattern::UniformRandom { messages_per_node })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(1)
        .mean_inter_arrival_ns(5.0)
        .nominal_ber(1e-11)
        .seed(23)
        .workload_heated(RcNetworkParameters::paper_package(), traces)
        .policy(DecisionPolicy::EpochGated {
            epoch_ns: 25.0,
            quantization_k,
            hysteresis_k: 0.0,
            revert_hysteresis_k: 10.0,
        })
        .cache_resolution(1.0 / quantization_k)
}

/// Outcome of one scale-out run, with the scenario build phase (traffic
/// generation, manager construction) timed separately from the epoch loop.
pub struct ScaleOutRun {
    /// The simulation report (recorder-independent, thread-independent).
    pub report: RunReport,
    /// Deterministic registry contents fed by the run's events.
    pub metrics: MetricsSnapshot,
    /// Non-deterministic per-shard wall-clock aggregates, rendered.
    pub wall_clock: Json,
    /// Wall clock of `ScenarioBuilder::build`, in microseconds.
    pub build_micros: u64,
    /// Wall clock of `Scenario::run` (the phase that shards), in
    /// microseconds.
    pub run_micros: u64,
}

/// Runs one scale-out configuration at the given thread budget with a fresh
/// registry recorder.
///
/// # Panics
///
/// Panics if the configuration fails to build.
#[must_use]
pub fn run_scale_out(builder: &ScenarioBuilder, threads: usize) -> ScaleOutRun {
    let metrics = Arc::new(MetricsRegistry::new());
    let wall = Arc::new(WallClockRegistry::new());
    let recorder = RecorderHandle::new(Arc::new(RegistryRecorder::new(
        metrics.clone(),
        wall.clone(),
    )));
    // onoc-lint: allow(D002, bench wall clock lands in the quarantined non-deterministic section of BENCH_scaling.json)
    let build_started = std::time::Instant::now();
    let scenario = builder
        .clone()
        .threads(threads)
        .telemetry(recorder)
        .build()
        .unwrap_or_else(|e| panic!("scale-out scenario must build: {e}"));
    let build_micros = u64::try_from(build_started.elapsed().as_micros()).unwrap_or(u64::MAX);
    // onoc-lint: allow(D002, bench wall clock lands in the quarantined non-deterministic section of BENCH_scaling.json)
    let run_started = std::time::Instant::now();
    let report = scenario.run();
    let run_micros = u64::try_from(run_started.elapsed().as_micros()).unwrap_or(u64::MAX);
    ScaleOutRun {
        report,
        metrics: metrics.snapshot(),
        wall_clock: wall.to_json(),
        build_micros,
        run_micros,
    }
}

fn counters_json(counters: CacheCounters) -> Json {
    Json::obj(vec![
        ("hits", counters.hits.into()),
        ("misses", counters.misses.into()),
        ("entries", counters.entries.into()),
        ("hit_rate", counters.hit_rate().into()),
    ])
}

/// Runs the scale-out suite and assembles the `scale_out` section of
/// `BENCH_scaling.json`:
///
/// 1. **Headline** — the homogeneous case at every thread count in
///    [`SCALE_OUT_THREAD_COUNTS`]; deterministic metrics and the
///    thread-normalized report must be bit-identical.
/// 2. **Cross-engine A/B** (reduced size) — the shared-cache engine against
///    `per_link_caches()`; physics must match bit-for-bit once cache
///    accounting is set aside, and the per-link engine must pay strictly
///    more solver invocations (the reported ratio is the point of the
///    shared cache).
/// 3. **Snapshot warm start** (reduced size) — a cold run persists
///    `snapshot_path`; the warm re-run must report zero solver invocations
///    and a 100 % hit rate while producing the same physics.
/// 4. **Speedup floor** — single-thread → max-thread run-phase speedup must
///    reach [`SCALE_OUT_SPEEDUP_FLOOR`] whenever the host has enough cores;
///    always recorded, only enforced on capable hosts.
///
/// Any pre-existing snapshot file is removed first so repeated invocations
/// stay cold-start deterministic.
///
/// # Errors
///
/// One line per violated gate.
#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
pub fn build_scale_out_section(
    oni_count: usize,
    messages_per_node: u64,
    reduced_oni_count: usize,
    reduced_messages_per_node: u64,
    snapshot_path: &Path,
) -> Result<Json, Vec<String>> {
    let mut failures = Vec::new();

    // 1. Headline thread-scaling runs.
    let headline = scale_out_builder(oni_count, messages_per_node, SCALE_OUT_QUANTIZATION_K);
    let runs: Vec<(usize, ScaleOutRun)> = SCALE_OUT_THREAD_COUNTS
        .iter()
        .map(|&threads| (threads, run_scale_out(&headline, threads)))
        .collect();
    let (reference_threads, reference) = &runs[0];
    let normalized = |run: &ScaleOutRun| {
        let mut report = run.report.clone();
        report.config.threads = 0;
        report
    };
    let reference_report = normalized(reference);
    for (threads, run) in &runs[1..] {
        if run.metrics != reference.metrics {
            failures.push(format!(
                "scale-out: deterministic metrics differ between {reference_threads} and \
                 {threads} threads"
            ));
        }
        if normalized(run) != reference_report {
            failures.push(format!(
                "scale-out: run report differs between {reference_threads} and {threads} threads"
            ));
        }
    }

    // 2. Cross-engine A/B at the reduced size.  Cache accounting
    // legitimately differs (per-link caches re-solve per ONI, and the
    // shared engine deduplicates the initial fleet configuration through
    // the cache), so the report's solver counters and the
    // cache/solver/manager metric counters are set aside before the
    // bit-identity comparison; the report itself — every delivered message,
    // epoch, switch and temperature — must still match bit-for-bit.
    let reduced = scale_out_builder(
        reduced_oni_count,
        reduced_messages_per_node,
        SCALE_OUT_REDUCED_QUANTIZATION_K,
    );
    let shared = run_scale_out(&reduced, 1);
    let per_link = run_scale_out(&reduced.clone().per_link_caches(), 1);
    let physics = |run: &ScaleOutRun| {
        let mut report = run.report.clone();
        report.config.threads = 0;
        report.solver_cache = CacheCounters::default();
        report
    };
    let physics_metrics = |run: &ScaleOutRun| {
        let mut metrics = run.metrics.clone();
        metrics.counters.retain(|key, _| {
            !key.starts_with("cache.")
                && !key.starts_with("solver.")
                && !key.starts_with("manager.")
        });
        metrics
    };
    if physics(&shared) != physics(&per_link) {
        failures
            .push("cross-engine: shared-cache and per-link-cache run reports diverge".to_string());
    }
    if physics_metrics(&shared) != physics_metrics(&per_link) {
        failures.push(
            "cross-engine: shared-cache and per-link-cache deterministic metrics diverge"
                .to_string(),
        );
    }
    let shared_solves = shared.report.solver_cache.misses;
    let per_link_solves = per_link.report.solver_cache.misses;
    if shared_solves == 0 {
        failures.push("cross-engine: shared-cache run never invoked the solver".to_string());
    }
    if per_link_solves <= shared_solves {
        failures.push(format!(
            "cross-engine: per-link caches should re-solve strictly more than the shared cache \
             ({per_link_solves} vs {shared_solves})"
        ));
    }

    // 3. Snapshot warm start at the reduced size.  A snapshot left behind
    // by a previous invocation would silently warm the cold run, so it is
    // removed first.
    let _ = std::fs::remove_file(snapshot_path);
    let with_snapshot = || reduced.clone().cache_snapshot(snapshot_path);
    let cold = run_scale_out(&with_snapshot(), 1);
    let cold_counters = cold.report.solver_cache;
    if cold_counters.misses == 0 {
        failures.push("snapshot: cold run never invoked the solver".to_string());
    }
    if !snapshot_path.exists() {
        failures.push(format!(
            "snapshot: cold run did not persist {}",
            snapshot_path.display()
        ));
    }
    let warm = run_scale_out(&with_snapshot(), 1);
    let warm_counters = warm.report.solver_cache;
    if warm_counters.misses != 0 {
        failures.push(format!(
            "snapshot: warm start still invoked the solver {} times",
            warm_counters.misses
        ));
    }
    if warm_counters.hits == 0 || warm_counters.hit_rate() < 1.0 {
        failures.push(format!(
            "snapshot: warm start should be pure cache hits, got {warm_counters}"
        ));
    }
    if physics(&warm) != physics(&cold) {
        failures.push("snapshot: warm-start run report diverges from the cold run".to_string());
    }
    if physics_metrics(&warm) != physics_metrics(&cold) {
        failures.push(
            "snapshot: warm-start deterministic metrics diverge from the cold run".to_string(),
        );
    }

    // 4. Run-phase speedup, enforced only where the host can express it.
    let max_threads = *SCALE_OUT_THREAD_COUNTS
        .last()
        .unwrap_or_else(|| unreachable!("thread counts are a non-empty constant"));
    let run_micros_at = |wanted: usize| {
        runs.iter()
            .find(|(threads, _)| *threads == wanted)
            .map(|(_, run)| run.run_micros)
            .unwrap_or_else(|| panic!("thread count {wanted} is in SCALE_OUT_THREAD_COUNTS"))
    };
    let speedup = run_micros_at(1) as f64 / run_micros_at(max_threads).max(1) as f64;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let enforced = cores >= max_threads;
    if enforced && speedup < SCALE_OUT_SPEEDUP_FLOOR {
        failures.push(format!(
            "scale-out: 1 -> {max_threads}-thread run-phase speedup {speedup:.2}x is below the \
             {SCALE_OUT_SPEEDUP_FLOOR}x floor"
        ));
    }

    if !failures.is_empty() {
        return Err(failures);
    }

    let wall_runs: Vec<(String, Json)> = runs
        .iter()
        .map(|(threads, run)| {
            (
                format!("threads_{threads}"),
                Json::obj(vec![
                    ("build_micros", run.build_micros.into()),
                    ("run_micros", run.run_micros.into()),
                    ("shards", run.wall_clock.clone()),
                ]),
            )
        })
        .collect();
    Ok(Json::obj(vec![
        ("label", format!("scale-out/oni{oni_count}").into()),
        ("oni_count", oni_count.into()),
        ("messages_per_node", messages_per_node.into()),
        (
            "deterministic",
            Json::obj(vec![
                ("report", report_digest(&reference.report)),
                ("metrics", reference.metrics.to_json()),
                (
                    "cross_engine",
                    Json::obj(vec![
                        ("oni_count", reduced_oni_count.into()),
                        ("status", "bit-identical".into()),
                        ("shared_cache_solves", shared_solves.into()),
                        ("per_link_cache_solves", per_link_solves.into()),
                        (
                            "solve_ratio",
                            (per_link_solves as f64 / shared_solves.max(1) as f64).into(),
                        ),
                    ]),
                ),
                (
                    "snapshot",
                    Json::obj(vec![
                        ("entries", cold_counters.entries.into()),
                        ("cold", counters_json(cold_counters)),
                        ("warm", counters_json(warm_counters)),
                    ]),
                ),
            ]),
        ),
        (
            "non_deterministic",
            Json::Obj(
                wall_runs
                    .into_iter()
                    .chain([
                        (
                            format!("run_speedup_1_to_{max_threads}"),
                            Json::from(speedup),
                        ),
                        ("speedup_floor".to_string(), SCALE_OUT_SPEEDUP_FLOOR.into()),
                        ("speedup_floor_enforced".to_string(), enforced.into()),
                        ("available_parallelism".to_string(), cores.into()),
                    ])
                    .collect(),
            ),
        ),
    ]))
}

/// Appends the `scale_out` section to an assembled document.
pub fn attach_scale_out(document: &mut Json, section: Json) {
    if let Json::Obj(fields) = document {
        fields.push(("scale_out".to_string(), section));
    }
}

/// `BENCH_scaling.json` at the repository root, wherever the binary runs
/// from.
#[must_use]
pub fn default_output_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scaling.json")
}

/// `BENCH_cache_snapshot.json` at the repository root: the operating-point
/// cache snapshot the scale-out suite persists and warm-starts from.
#[must_use]
pub fn default_snapshot_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_cache_snapshot.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_labels_are_unique_and_cover_both_policies() {
        let cases = scenario_matrix();
        assert_eq!(cases.len(), 12);
        let labels: std::collections::HashSet<_> = cases.iter().map(|c| c.label.clone()).collect();
        assert_eq!(labels.len(), cases.len());
        assert!(cases.iter().any(|c| c.policy == "per-message"));
        assert!(cases.iter().any(|c| c.policy == "epoch-gated"));
    }

    #[test]
    fn default_output_path_targets_the_repo_root() {
        let path = default_output_path();
        assert!(path.ends_with("BENCH_scaling.json"));
        assert!(
            path.parent()
                .is_some_and(|root| root.join("ROADMAP.md").exists()),
            "{path:?} should sit next to ROADMAP.md"
        );
    }

    #[test]
    fn default_snapshot_path_sits_next_to_the_scaling_artifact() {
        assert_eq!(
            default_snapshot_path().parent(),
            default_output_path().parent()
        );
    }

    #[test]
    fn scale_out_builder_is_homogeneous_and_bucket_aligned() {
        let builder = scale_out_builder(5, 10, 0.25);
        let config = builder.config();
        assert_eq!(config.oni_count, 5);
        // The cache resolution is the inverse of the decision quantization,
        // so decision buckets and cache keys coincide one-to-one.
        assert_eq!(config.cache_buckets_per_kelvin, Some(4.0));
        assert!(
            config.variation.is_none() && config.assignment.is_none(),
            "the scale-out fleet must stay homogeneous (one manager, one shared cache)"
        );
        assert!(builder.build().is_ok(), "scale-out config builds");
    }
}
