//! The perf-trajectory harness behind `cargo run -p onoc-bench --bin
//! perf_trajectory`.
//!
//! Runs a fixed scenario matrix (fleet size × decision policy × fabrication
//! variation) with an [`onoc_telemetry::RegistryRecorder`] attached, and
//! assembles the `BENCH_scaling.json` artifact the ROADMAP asks for: one
//! entry per scenario with a **deterministic** section (event counters,
//! histograms and report facts that must be bit-identical across repeated
//! runs and thread counts) and a **non-deterministic** section (wall-clock
//! timings, machine-speed dependent by nature).
//!
//! Determinism is self-gated: every scenario runs once per thread count in
//! [`DETERMINISM_THREAD_COUNTS`] and the harness fails loudly if either the
//! deterministic metrics or the full [`RunReport`] differ.

use std::sync::Arc;

use onoc_link::TrafficClass;
use onoc_sim::traffic::TrafficPattern;
use onoc_sim::{
    DecisionPolicy, DesignAssignmentConfig, RingVariationConfig, RunReport, ScenarioBuilder,
    ScenarioConfig,
};
use onoc_telemetry::{
    Json, MetricsRegistry, MetricsSnapshot, RecorderHandle, RegistryRecorder, WallClockRegistry,
};
use onoc_thermal::{BankTuningMode, RcNetworkParameters, ThermalEnvironment};
use onoc_units::Celsius;

/// Version tag of the `BENCH_scaling.json` schema.
pub const SCHEMA_VERSION: u64 = 1;

/// Thread counts every scenario is re-run at; the deterministic sections
/// must be bit-identical across all of them.
pub const DETERMINISM_THREAD_COUNTS: [usize; 2] = [1, 4];

/// Fleet sizes of the default matrix.
pub const DEFAULT_FLEET_SIZES: [usize; 3] = [4, 8, 12];

/// Messages per source node in the default matrix.
pub const DEFAULT_MESSAGES_PER_NODE: u64 = 60;

/// One prepared scenario of the matrix.
pub struct TrajectoryCase {
    /// Unique case label, e.g. `epoch-variation-barrel/oni8`.
    pub label: String,
    /// Policy family, `per-message` or `epoch-gated`.
    pub policy: &'static str,
    /// Fleet size.
    pub oni_count: usize,
    /// The full configuration (thread budget is overridden per run).
    pub config: ScenarioConfig,
}

fn base_builder(oni_count: usize, messages_per_node: u64) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .oni_count(oni_count)
        .pattern(TrafficPattern::UniformRandom { messages_per_node })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(10.0)
        .nominal_ber(1e-11)
        .seed(17)
}

/// The scenario matrix over the given fleet sizes: per-message over the
/// paper ambient, per-message over a static hotspot gradient, epoch-gated
/// activity-coupled (homogeneous fleet, shared solver cache), and
/// epoch-gated activity-coupled with per-ONI fabrication variation under
/// barrel-shift tuning (heterogeneous fleet, sharded re-asks).
#[must_use]
pub fn scenario_matrix_with(fleet_sizes: &[usize], messages_per_node: u64) -> Vec<TrajectoryCase> {
    let mut cases = Vec::new();
    for &n in fleet_sizes {
        let flavors: [(&str, &str, ScenarioBuilder); 4] = [
            (
                "per-message-ambient",
                "per-message",
                base_builder(n, messages_per_node),
            ),
            (
                "per-message-hotspot",
                "per-message",
                base_builder(n, messages_per_node).prescribed(ThermalEnvironment::Hotspot {
                    base: Celsius::new(25.0),
                    peak: Celsius::new(55.0),
                    center: 0,
                    decay_per_hop: 0.5,
                }),
            ),
            (
                "epoch-activity",
                "epoch-gated",
                base_builder(n, messages_per_node)
                    .activity_coupled(RcNetworkParameters::paper_package())
                    .policy(DecisionPolicy::epoch_gated()),
            ),
            (
                "epoch-variation-barrel",
                "epoch-gated",
                base_builder(n, messages_per_node)
                    .activity_coupled(RcNetworkParameters::paper_package())
                    .policy(DecisionPolicy::epoch_gated())
                    .variation(RingVariationConfig {
                        sigma_nm: 0.040,
                        seed: 42,
                        mode: BankTuningMode::full_barrel_shift(16),
                    })
                    .design_assignment(DesignAssignmentConfig::greedy_refine(7)),
            ),
        ];
        for (flavor, policy, builder) in flavors {
            cases.push(TrajectoryCase {
                label: format!("{flavor}/oni{n}"),
                policy,
                oni_count: n,
                config: builder.config().clone(),
            });
        }
    }
    cases
}

/// The default matrix: [`DEFAULT_FLEET_SIZES`] ×
/// [`DEFAULT_MESSAGES_PER_NODE`] messages per node.
#[must_use]
pub fn scenario_matrix() -> Vec<TrajectoryCase> {
    scenario_matrix_with(&DEFAULT_FLEET_SIZES, DEFAULT_MESSAGES_PER_NODE)
}

/// Outcome of one scenario at one thread count.
pub struct CaseRun {
    /// The simulation report (recorder-independent, thread-independent).
    pub report: RunReport,
    /// Deterministic registry contents fed by the run's events.
    pub metrics: MetricsSnapshot,
    /// Non-deterministic per-shard wall-clock aggregates, rendered.
    pub wall_clock: Json,
    /// End-to-end wall clock of build + run, in microseconds.
    pub run_micros: u64,
}

/// Runs one case at the given thread budget with a fresh registry recorder.
///
/// # Panics
///
/// Panics if the configuration fails to build (the matrix only contains
/// valid configurations).
#[must_use]
pub fn run_case(case: &TrajectoryCase, threads: usize) -> CaseRun {
    let metrics = Arc::new(MetricsRegistry::new());
    let wall = Arc::new(WallClockRegistry::new());
    let recorder = RecorderHandle::new(Arc::new(RegistryRecorder::new(
        metrics.clone(),
        wall.clone(),
    )));
    // onoc-lint: allow(D002, bench wall clock lands in the quarantined non-deterministic section of BENCH_scaling.json)
    let started = std::time::Instant::now();
    let report = ScenarioBuilder::from_config(case.config.clone())
        .threads(threads)
        .telemetry(recorder)
        .build()
        .unwrap_or_else(|e| panic!("case {} must build: {e}", case.label))
        .run();
    let run_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    CaseRun {
        report,
        metrics: metrics.snapshot(),
        wall_clock: wall.to_json(),
        run_micros,
    }
}

/// The deterministic facts of a report the artifact exposes for gating —
/// a digest, not the full report, so the JSON stays diffable by eye.
fn report_digest(report: &RunReport) -> Json {
    Json::obj(vec![
        ("delivered_messages", report.stats.delivered_messages.into()),
        ("epochs", report.epochs.into()),
        ("decisions", report.decisions.into()),
        ("infeasible_requests", report.infeasible_requests.into()),
        ("scheme_switches", report.total_switches().into()),
        ("solver_invocations", report.solver_cache.misses.into()),
        ("cache_hits", report.solver_cache.hits.into()),
        ("cache_hit_rate", report.solver_cache.hit_rate().into()),
        ("reconfigured_messages", report.reconfigured_messages.into()),
    ])
}

/// Runs the whole matrix at every thread count in
/// [`DETERMINISM_THREAD_COUNTS`] and assembles the `BENCH_scaling.json`
/// document.
///
/// # Errors
///
/// One line per determinism violation: a case whose deterministic metrics
/// or whose full report differed between thread counts.
pub fn build_document(cases: &[TrajectoryCase]) -> Result<Json, Vec<String>> {
    let mut failures = Vec::new();
    let mut rendered_cases = Vec::new();
    for case in cases {
        let runs: Vec<(usize, CaseRun)> = DETERMINISM_THREAD_COUNTS
            .iter()
            .map(|&threads| (threads, run_case(case, threads)))
            .collect();
        let (reference_threads, reference) = &runs[0];
        // The report embeds the simulated configuration, whose thread
        // budget legitimately differs between runs; everything else must
        // match bit-for-bit.
        let normalized = |run: &CaseRun| {
            let mut report = run.report.clone();
            report.config.threads = 0;
            report
        };
        let reference_report = normalized(reference);
        for (threads, run) in &runs[1..] {
            if run.metrics != reference.metrics {
                failures.push(format!(
                    "{}: deterministic metrics differ between {reference_threads} and {threads} \
                     threads",
                    case.label
                ));
            }
            if normalized(run) != reference_report {
                failures.push(format!(
                    "{}: run report differs between {reference_threads} and {threads} threads",
                    case.label
                ));
            }
        }
        let wall_runs: Vec<(String, Json)> = runs
            .iter()
            .map(|(threads, run)| {
                (
                    format!("threads_{threads}"),
                    Json::obj(vec![
                        ("run_micros", run.run_micros.into()),
                        ("shards", run.wall_clock.clone()),
                    ]),
                )
            })
            .collect();
        rendered_cases.push(Json::obj(vec![
            ("label", case.label.as_str().into()),
            ("policy", case.policy.into()),
            ("oni_count", case.oni_count.into()),
            (
                "deterministic",
                Json::obj(vec![
                    ("report", report_digest(&reference.report)),
                    ("metrics", reference.metrics.to_json()),
                ]),
            ),
            ("non_deterministic", Json::Obj(wall_runs)),
        ]));
    }
    if !failures.is_empty() {
        return Err(failures);
    }
    Ok(Json::obj(vec![
        ("schema_version", SCHEMA_VERSION.into()),
        ("bench", "perf_trajectory".into()),
        (
            "determinism",
            Json::obj(vec![
                (
                    "verified_thread_counts",
                    Json::Arr(
                        DETERMINISM_THREAD_COUNTS
                            .iter()
                            .map(|&t| Json::from(t))
                            .collect(),
                    ),
                ),
                ("status", "ok".into()),
            ]),
        ),
        ("cases", Json::Arr(rendered_cases)),
    ]))
}

/// `BENCH_scaling.json` at the repository root, wherever the binary runs
/// from.
#[must_use]
pub fn default_output_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scaling.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_labels_are_unique_and_cover_both_policies() {
        let cases = scenario_matrix();
        assert_eq!(cases.len(), 12);
        let labels: std::collections::HashSet<_> = cases.iter().map(|c| c.label.clone()).collect();
        assert_eq!(labels.len(), cases.len());
        assert!(cases.iter().any(|c| c.policy == "per-message"));
        assert!(cases.iter().any(|c| c.policy == "epoch-gated"));
    }

    #[test]
    fn default_output_path_targets_the_repo_root() {
        let path = default_output_path();
        assert!(path.ends_with("BENCH_scaling.json"));
        assert!(
            path.parent()
                .is_some_and(|root| root.join("ROADMAP.md").exists()),
            "{path:?} should sit next to ROADMAP.md"
        );
    }
}
