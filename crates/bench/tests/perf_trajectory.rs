//! Schema tests for the perf-trajectory artifact: the document must parse
//! as JSON, carry the deterministic-counter section, and self-gate across
//! thread counts.

use onoc_bench::perf::{build_document, scenario_matrix_with, SCHEMA_VERSION};
use onoc_telemetry::Json;

#[test]
fn bench_scaling_document_parses_with_deterministic_counters() {
    // One small fleet size keeps the matrix at 4 scenarios × 2 thread
    // counts — fast enough for a debug-mode test run.
    let cases = scenario_matrix_with(&[3], 10);
    let document = build_document(&cases).expect("determinism self-gate must pass");

    // The artifact must survive a render → parse round trip.
    let rendered = document.render_pretty();
    let parsed = Json::parse(&rendered).expect("rendered document parses");
    assert_eq!(parsed, document);

    assert_eq!(
        parsed.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    assert_eq!(
        parsed
            .get("determinism")
            .and_then(|d| d.get("status"))
            .and_then(Json::as_str),
        Some("ok")
    );

    let rendered_cases = parsed
        .get("cases")
        .and_then(Json::as_array)
        .expect("cases array");
    assert_eq!(rendered_cases.len(), cases.len());
    for case in rendered_cases {
        let deterministic = case.get("deterministic").expect("deterministic section");
        let counters = deterministic
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(Json::as_object)
            .expect("deterministic counter section");
        let solves = counters
            .iter()
            .find(|(k, _)| k == "solver.invocations")
            .and_then(|(_, v)| v.as_u64())
            .expect("solver.invocations counter");
        assert!(solves > 0, "every scenario invokes the solver");
        // Wall-clock timings must stay out of the deterministic section.
        assert!(
            counters.iter().all(|(k, _)| !k.starts_with("shard.")),
            "shard wall-clock leaked into deterministic counters"
        );
        assert!(case.get("non_deterministic").is_some());
    }
}
