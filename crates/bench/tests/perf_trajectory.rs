//! Schema tests for the perf-trajectory artifact: the document must parse
//! as JSON, carry the deterministic-counter section, and self-gate across
//! thread counts.

use onoc_bench::perf::{
    attach_scale_out, build_document, build_scale_out_section, scenario_matrix_with, SCHEMA_VERSION,
};
use onoc_telemetry::Json;

#[test]
fn bench_scaling_document_parses_with_deterministic_counters() {
    // One small fleet size keeps the matrix at 4 scenarios × 2 thread
    // counts — fast enough for a debug-mode test run.
    let cases = scenario_matrix_with(&[3], 10);
    let document = build_document(&cases).expect("determinism self-gate must pass");

    // The artifact must survive a render → parse round trip.
    let rendered = document.render_pretty();
    let parsed = Json::parse(&rendered).expect("rendered document parses");
    assert_eq!(parsed, document);

    assert_eq!(
        parsed.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION)
    );
    assert_eq!(
        parsed
            .get("determinism")
            .and_then(|d| d.get("status"))
            .and_then(Json::as_str),
        Some("ok")
    );

    let rendered_cases = parsed
        .get("cases")
        .and_then(Json::as_array)
        .expect("cases array");
    assert_eq!(rendered_cases.len(), cases.len());
    for case in rendered_cases {
        let deterministic = case.get("deterministic").expect("deterministic section");
        let counters = deterministic
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(Json::as_object)
            .expect("deterministic counter section");
        let solves = counters
            .iter()
            .find(|(k, _)| k == "solver.invocations")
            .and_then(|(_, v)| v.as_u64())
            .expect("solver.invocations counter");
        assert!(solves > 0, "every scenario invokes the solver");
        // Wall-clock timings must stay out of the deterministic section.
        assert!(
            counters.iter().all(|(k, _)| !k.starts_with("shard.")),
            "shard wall-clock leaked into deterministic counters"
        );
        assert!(case.get("non_deterministic").is_some());
    }
}

#[test]
fn scale_out_section_gates_and_renders_at_reduced_size() {
    let snapshot = std::env::temp_dir().join(format!(
        "onoc_perf_trajectory_snapshot_test_{}.json",
        std::process::id()
    ));
    // Tiny headline and cross-engine sizes keep the eight runs (two thread
    // counts + cross-engine A/B + cold/warm snapshot) debug-mode fast.
    let section =
        build_scale_out_section(6, 12, 4, 8, &snapshot).expect("scale-out gates must pass");
    let _ = std::fs::remove_file(&snapshot);

    let mut document = build_document(&scenario_matrix_with(&[3], 10)).expect("matrix passes");
    attach_scale_out(&mut document, section);
    let rendered = document.render_pretty();
    let parsed = Json::parse(&rendered).expect("rendered document parses");
    assert_eq!(parsed, document);

    let scale_out = parsed.get("scale_out").expect("scale_out section");
    let deterministic = scale_out.get("deterministic").expect("deterministic");
    let warm_misses = deterministic
        .get("snapshot")
        .and_then(|s| s.get("warm"))
        .and_then(|w| w.get("misses"))
        .and_then(Json::as_u64);
    assert_eq!(warm_misses, Some(0), "warm start is pure hits");
    let ratio = deterministic
        .get("cross_engine")
        .and_then(|c| c.get("solve_ratio"))
        .and_then(Json::as_f64)
        .expect("solve ratio");
    assert!(ratio > 1.0, "per-link caches must re-solve more: {ratio}");
    let non_det = scale_out
        .get("non_deterministic")
        .expect("non_deterministic");
    for threads in ["threads_1", "threads_4"] {
        let run = non_det.get(threads).expect("per-thread timings");
        assert!(run.get("build_micros").is_some());
        assert!(run.get("run_micros").is_some());
    }
    assert!(non_det.get("speedup_floor_enforced").is_some());
}
