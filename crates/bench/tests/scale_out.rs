//! Scale-out invariants of the shared operating-point cache, exercised
//! through the bench harness's scenario builder:
//!
//! * a homogeneous fleet produces bit-identical physics whether the epoch
//!   loop runs on 1, 4 or 8 threads, and whether the fleet shares one cache
//!   or every link keeps its own;
//! * a persisted cache snapshot warm-starts a second run into a pure-hit
//!   regime (zero solver invocations) without changing the physics.

use onoc_bench::perf::{run_scale_out, scale_out_builder, ScaleOutRun};
use onoc_link::CacheCounters;
use onoc_sim::RunReport;
use onoc_telemetry::MetricsSnapshot;
use onoc_topology::Topology;
use proptest::prelude::*;

/// Coarse decision buckets keep the property-test runs fast.
const QUANTIZATION_K: f64 = 0.25;

/// The report with everything thread- or cache-accounting-dependent
/// normalized away: what must be bit-identical across engines.
fn physics(report: &RunReport) -> RunReport {
    let mut report = report.clone();
    report.config.threads = 0;
    report.solver_cache = CacheCounters::default();
    report
}

/// Deterministic metrics minus the cache, solver and manager counters,
/// which legitimately differ between the shared-cache and per-link-cache
/// engines (the shared cache deduplicates the initial fleet configuration,
/// so the per-link engine both re-solves more and asks its managers more).
fn physics_metrics(run: &ScaleOutRun) -> MetricsSnapshot {
    let mut metrics = run.metrics.clone();
    metrics.counters.retain(|key, _| {
        !key.starts_with("cache.") && !key.starts_with("solver.") && !key.starts_with("manager.")
    });
    metrics
}

proptest! {
    /// The shared-cache engine is an optimization, not a semantic change:
    /// across thread counts {1, 4, 8} the full deterministic state (report
    /// and metrics) is bit-identical, and the per-link-cache engine agrees
    /// on every bit of physics.
    #[test]
    fn shared_cache_is_bit_identical_across_threads_and_engines(
        oni_count in 2usize..8,
        messages_per_node in 4u64..20,
    ) {
        let builder = scale_out_builder(oni_count, messages_per_node, QUANTIZATION_K);
        let reference = run_scale_out(&builder, 1);
        for threads in [4usize, 8] {
            let run = run_scale_out(&builder, threads);
            prop_assert_eq!(&run.metrics, &reference.metrics);
            prop_assert_eq!(physics(&run.report), physics(&reference.report));
            // Counter determinism is stronger than physics determinism: the
            // solve-once cache admits exactly one miss per distinct key at
            // any interleaving.
            prop_assert_eq!(run.report.solver_cache, reference.report.solver_cache);
        }
        let per_link = run_scale_out(&builder.clone().per_link_caches(), 1);
        prop_assert_eq!(physics(&per_link.report), physics(&reference.report));
        prop_assert_eq!(physics_metrics(&per_link), physics_metrics(&reference));
        // Per-link caches cannot share work across the fleet, so they pay
        // at least as many solver invocations as the shared cache.
        prop_assert!(
            per_link.report.solver_cache.misses >= reference.report.solver_cache.misses,
            "per-link solves {} < shared solves {}",
            per_link.report.solver_cache.misses,
            reference.report.solver_cache.misses
        );
    }
}

proptest! {
    /// Gate for the destination-sharded epoch playback: with a fabric
    /// topology configured, the serial walk (1 thread) and the sharded
    /// fan-out (4 threads) produce bit-identical reports, deterministic
    /// metrics and cache counters.  Multi-ring fabrics stay single-hop, so
    /// every delivery is exactly one hop.
    #[test]
    fn epoch_playback_shards_bit_identically_by_destination(
        messages_per_node in 4u64..16,
        groups in 1usize..4,
    ) {
        let builder = scale_out_builder(8, messages_per_node, QUANTIZATION_K)
            .topology(Topology::multi_ring(8, groups));
        let serial = run_scale_out(&builder, 1);
        let sharded = run_scale_out(&builder, 4);
        prop_assert_eq!(&serial.metrics, &sharded.metrics);
        prop_assert_eq!(physics(&serial.report), physics(&sharded.report));
        prop_assert_eq!(serial.report.solver_cache, sharded.report.solver_cache);
        prop_assert_eq!(
            serial.report.stats.hops_traversed,
            serial.report.stats.delivered_messages
        );
    }
}

#[test]
fn multihop_playback_is_thread_invariant() {
    let builder = scale_out_builder(8, 12, QUANTIZATION_K).topology(Topology::hybrid_mesh(8, 4));
    let serial = run_scale_out(&builder, 1);
    let sharded = run_scale_out(&builder, 4);
    assert_eq!(serial.metrics, sharded.metrics);
    assert_eq!(physics(&serial.report), physics(&sharded.report));
    assert_eq!(
        serial.report.stats.delivered_messages,
        serial.report.stats.injected_messages
    );
    assert!(
        serial.report.stats.hops_traversed > serial.report.stats.delivered_messages,
        "inter-cluster flows must relay"
    );
}

#[test]
fn snapshot_warm_start_runs_without_a_single_solve() {
    let path = std::env::temp_dir().join(format!(
        "onoc_scale_out_snapshot_test_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let builder = scale_out_builder(6, 12, QUANTIZATION_K).cache_snapshot(&path);

    let cold = run_scale_out(&builder, 1);
    assert!(
        cold.report.solver_cache.misses > 0,
        "cold run must invoke the solver"
    );
    assert!(path.exists(), "cold run persists the snapshot");

    let warm = run_scale_out(&builder, 1);
    assert_eq!(
        warm.report.solver_cache.misses, 0,
        "warm start re-solves nothing: {}",
        warm.report.solver_cache
    );
    assert!(warm.report.solver_cache.hits > 0);
    assert!((warm.report.solver_cache.hit_rate() - 1.0).abs() < f64::EPSILON);
    assert_eq!(physics(&warm.report), physics(&cold.report));
    assert_eq!(physics_metrics(&warm), physics_metrics(&cold));
    // The solver never ran, so the warm run's telemetry has no trace of it.
    assert!(!warm.metrics.counters.contains_key("solver.invocations"));
    assert!(!warm.metrics.counters.contains_key("cache.misses"));

    // Saving is idempotent: the warm run re-persisted byte-identical state.
    let first = std::fs::read_to_string(&path).expect("snapshot readable");
    let reloaded = run_scale_out(&builder, 1);
    assert_eq!(reloaded.report.solver_cache.misses, 0);
    let second = std::fs::read_to_string(&path).expect("snapshot readable");
    assert_eq!(first, second, "snapshot bytes are deterministic");

    let _ = std::fs::remove_file(&path);
}
