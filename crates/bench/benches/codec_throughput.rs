//! Criterion micro-benchmarks of the coding layer: encode/decode throughput
//! of the Hamming family on 64-bit words, with and without injected errors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use onoc_ecc_codes::EccScheme;
use onoc_interface::{InterfaceConfig, Receiver, Transmitter};

fn bench_block_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_codec");
    for scheme in [
        EccScheme::Hamming74,
        EccScheme::Hamming7164,
        EccScheme::Secded7264,
        EccScheme::Uncoded,
    ] {
        let code = scheme.build().expect("built-in scheme");
        let message: Vec<bool> = (0..code.message_length()).map(|i| i % 3 == 0).collect();
        let codeword = code.encode(&message).expect("valid message");
        group.throughput(Throughput::Elements(code.message_length() as u64));
        group.bench_with_input(BenchmarkId::new("encode", scheme), &message, |b, m| {
            b.iter(|| code.encode(m).expect("valid message"));
        });
        group.bench_with_input(
            BenchmarkId::new("decode_clean", scheme),
            &codeword,
            |b, cw| {
                b.iter(|| code.decode(cw).expect("valid codeword"));
            },
        );
        let mut corrupted = codeword.clone();
        corrupted[0] = !corrupted[0];
        group.bench_with_input(
            BenchmarkId::new("decode_corrupted", scheme),
            &corrupted,
            |b, cw| {
                b.iter(|| code.decode(cw).expect("valid codeword"));
            },
        );
    }
    group.finish();
}

fn bench_interface_datapath(c: &mut Criterion) {
    let config = InterfaceConfig::paper_default();
    let tx = Transmitter::new(config.clone());
    let rx = Receiver::new(config);
    let mut group = c.benchmark_group("oni_datapath");
    group.throughput(Throughput::Bytes(8));
    for scheme in EccScheme::paper_schemes() {
        group.bench_with_input(
            BenchmarkId::new("tx_encode_word", scheme),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    tx.encode_word(0xDEAD_BEEF_CAFE_F00D, s)
                        .expect("supported scheme")
                });
            },
        );
        let stream = tx
            .encode_word(0xDEAD_BEEF_CAFE_F00D, scheme)
            .expect("supported scheme");
        group.bench_with_input(
            BenchmarkId::new("rx_decode_stream", scheme),
            &stream,
            |b, st| {
                b.iter(|| rx.decode_stream(st, scheme).expect("valid stream"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_block_codecs, bench_interface_datapath);
criterion_main!(benches);
