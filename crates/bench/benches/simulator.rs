//! Criterion micro-benchmarks of the NoC simulator: messages simulated per
//! second for uniform and hotspot traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use onoc_link::TrafficClass;
use onoc_sim::traffic::TrafficPattern;
use onoc_sim::{ScenarioBuilder, ScenarioConfig};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_simulation");
    group.sample_size(20);
    for (name, pattern) in [
        (
            "uniform",
            TrafficPattern::UniformRandom {
                messages_per_node: 50,
            },
        ),
        (
            "hotspot",
            TrafficPattern::Hotspot {
                destination: 0,
                messages_per_node: 50,
            },
        ),
    ] {
        let config: ScenarioConfig = ScenarioBuilder::new()
            .oni_count(12)
            .pattern(pattern)
            .class(TrafficClass::Bulk)
            .words_per_message(16)
            .mean_inter_arrival_ns(3.0)
            .nominal_ber(1e-11)
            .seed(5)
            .config()
            .clone();
        let messages = ScenarioBuilder::from_config(config.clone())
            .build()
            .expect("valid config")
            .message_count() as u64;
        group.throughput(Throughput::Elements(messages));
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| {
                ScenarioBuilder::from_config(cfg.clone())
                    .build()
                    .expect("valid config")
                    .run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
