//! Criterion benchmark of the memoized operating-point cache: a repeated
//! 25–85 °C sweep (every paper scheme, 0.5 K steps) with and without
//! memoization, plus a solver-invocation count demonstrating the ≥ 5×
//! reduction the cache buys on repeated sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use onoc_ecc_codes::EccScheme;
use onoc_link::NanophotonicLink;
use onoc_units::Celsius;

const REPETITIONS: usize = 10;

fn sweep_temperatures() -> Vec<Celsius> {
    (0..=120)
        .map(|step| Celsius::new(25.0 + 0.5 * f64::from(step)))
        .collect()
}

fn run_sweep_uncached(link: &NanophotonicLink) -> usize {
    let mut feasible = 0;
    for &t in &sweep_temperatures() {
        for scheme in EccScheme::paper_schemes() {
            if link.operating_point_at(scheme, 1e-11, t).is_ok() {
                feasible += 1;
            }
        }
    }
    feasible
}

fn run_sweep_memoized(link: &NanophotonicLink) -> usize {
    let mut feasible = 0;
    for &t in &sweep_temperatures() {
        for scheme in EccScheme::paper_schemes() {
            if link.operating_point_memoized(scheme, 1e-11, t).is_ok() {
                feasible += 1;
            }
        }
    }
    feasible
}

fn bench_sweeps(c: &mut Criterion) {
    let link = NanophotonicLink::paper_link();
    c.bench_function("sweep_25_85_uncached", |b| {
        b.iter(|| run_sweep_uncached(std::hint::black_box(&link)));
    });
    // A fresh link per measurement would only time the cold sweep; the
    // steady-state behaviour of a long-lived link is the warm sweep.
    let warm = NanophotonicLink::paper_link();
    let _ = run_sweep_memoized(&warm);
    c.bench_function("sweep_25_85_memoized_warm", |b| {
        b.iter(|| run_sweep_memoized(std::hint::black_box(&warm)));
    });
}

fn solver_invocation_report(_c: &mut Criterion) {
    // The headline number: repeated sweeps against one link invoke the
    // photonic solver once per distinct (scheme, BER, bucket) instead of
    // once per query.
    let link = NanophotonicLink::paper_link();
    let mut feasible = 0;
    for _ in 0..REPETITIONS {
        feasible += run_sweep_memoized(&link);
    }
    let counters = link.cache_counters();
    let queries = counters.total();
    let uncached_invocations = queries;
    let ratio = uncached_invocations as f64 / counters.misses as f64;
    println!(
        "op-cache: {REPETITIONS}x 25-85 degC sweep = {queries} queries, \
         {} solver invocations (uncached: {uncached_invocations}), \
         {ratio:.1}x fewer, hit rate {:.1}%, {feasible} feasible points",
        counters.misses,
        100.0 * counters.hit_rate(),
    );
    assert!(
        ratio >= 5.0,
        "the cache must cut solver invocations at least 5x on repeated sweeps, got {ratio:.1}x"
    );
}

fn solver_invocation_report_with_variation(_c: &mut Criterion) {
    // Guard for the per-ring refactor: a link with per-ring fabrication
    // variation and barrel-shift tuning must keep the cache effective —
    // the invocation reduction may not regress by more than 2x against the
    // >= 10x the uniform link achieves on this workload.
    let link = NanophotonicLink::paper_link()
        .with_fabrication_variation(onoc_thermal::FabricationVariation::new(0.04, 42))
        .with_bank_tuning_mode(onoc_thermal::BankTuningMode::full_barrel_shift(16));
    let mut feasible = 0;
    for _ in 0..REPETITIONS {
        feasible += run_sweep_memoized(&link);
    }
    let counters = link.cache_counters();
    let ratio = counters.total() as f64 / counters.misses as f64;
    println!(
        "op-cache (sigma = 40 pm, barrel shift): {REPETITIONS}x sweep = {} queries, \
         {} solver invocations, {ratio:.1}x fewer, hit rate {:.1}%, {feasible} feasible points",
        counters.total(),
        counters.misses,
        100.0 * counters.hit_rate(),
    );
    assert!(
        ratio >= 5.0,
        "per-ring variation must not regress the op-cache by more than 2x \
         (>= 5x invocation reduction required), got {ratio:.1}x"
    );
}

criterion_group!(
    benches,
    bench_sweeps,
    solver_invocation_report,
    solver_invocation_report_with_variation
);
criterion_main!(benches);
