//! Criterion micro-benchmarks of the analytic chain: erfc inversion, the
//! laser power solver and the full design-space sweep behind Fig. 5/6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onoc_ber::erfc_inv;
use onoc_ecc_codes::EccScheme;
use onoc_link::explore::DesignSpace;
use onoc_link::NanophotonicLink;

fn bench_math(c: &mut Criterion) {
    c.bench_function("erfc_inv_1e-11", |b| {
        b.iter(|| erfc_inv(std::hint::black_box(2e-11)));
    });
}

fn bench_operating_point(c: &mut Criterion) {
    let link = NanophotonicLink::paper_link();
    let mut group = c.benchmark_group("operating_point");
    for scheme in EccScheme::paper_schemes() {
        group.bench_with_input(BenchmarkId::from_parameter(scheme), &scheme, |b, &s| {
            b.iter(|| link.operating_point(s, 1e-11));
        });
    }
    group.finish();
}

fn bench_design_space(c: &mut Criterion) {
    c.bench_function("paper_sweep_evaluate_all", |b| {
        b.iter(|| DesignSpace::paper_sweep().evaluate_all());
    });
    c.bench_function("pareto_front_1e-9", |b| {
        let sweep = DesignSpace::paper_sweep();
        b.iter(|| sweep.pareto_front(1e-9));
    });
}

criterion_group!(
    benches,
    bench_math,
    bench_operating_point,
    bench_design_space
);
criterion_main!(benches);
