//! The shared, sharded, memoized operating-point cache.
//!
//! PR 2's per-link memoization made the `(scheme, BER, temperature)`
//! operating-point search ~10× cheaper, but the cache lived inside one
//! [`NanophotonicLink`](crate::link::NanophotonicLink): a homogeneous fleet
//! of thousands of *identical* ONIs still re-solved (or serialized behind a
//! single mutex) what its neighbours had already computed.  This module
//! lifts the memo into a [`SharedOpCache`] handle that many links, managers
//! and simulation shards clone cheaply (`Arc` inside) and query
//! concurrently:
//!
//! * **Sharded by fingerprint** — the key space is split across
//!   [`SHARD_COUNT`] independent shards, each behind its own lock, selected
//!   by [`OpCacheKey::fingerprint`].  Threads solving different temperature
//!   buckets never contend on one global mutex.
//! * **Solve-once semantics** — a key is solved by exactly one thread; every
//!   concurrent requester of the same key blocks on the shard's condvar and
//!   is answered from the freshly-filled entry.  The aggregate hit/miss
//!   counters are therefore *deterministic*: for a fixed query multiset,
//!   `misses` equals the number of distinct keys touched and `hits` the
//!   remainder, at any thread count and interleaving — bit-identical to the
//!   serial first-touch accounting the per-link cache used.
//! * **Persistent snapshots** — [`SharedOpCache::to_json`] serializes every
//!   completed entry (operating points *and* memoized infeasibilities)
//!   through the `onoc-telemetry` JSON kernel, in sorted key order so the
//!   artifact is byte-deterministic; [`SharedOpCache::load`] warm-starts a
//!   later run so repeated CLI sweeps and CI figure regeneration invoke the
//!   photonic solver zero times.
//!
//! Shard maps are `BTreeMap`s, not hash maps: snapshot serialization and
//! entry counting iterate them, and iteration on the deterministic path must
//! be ordered (`onoc-lint` rule D001).  All locking uses poison-recovery
//! (`unwrap_or_else(PoisonError::into_inner)`): every entry is written
//! atomically under the lock, so a panicking peer cannot leave a shard map
//! half-updated (rule D004 — no `expect` on lock acquisition).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use onoc_ecc_codes::EccScheme;
use onoc_interface::{ChannelPowerBreakdown, CommunicationTiming};
use onoc_photonics::power::{LaserOperatingPoint, SolveError};
use onoc_photonics::thermal::ThermalSummary;
use onoc_telemetry::Json;
use onoc_thermal::ResonanceDrift;
use onoc_units::{Celsius, Microwatts, Milliwatts, Nanoseconds, PicojoulesPerBit};

use crate::link::{CacheCounters, LinkError, OperatingPoint};

/// Default temperature resolution of the cache, in buckets per kelvin
/// (0.05 K buckets).
pub const DEFAULT_BUCKETS_PER_KELVIN: f64 = 20.0;

/// Number of independently-locked shards of the key space.
pub const SHARD_COUNT: usize = 16;

/// Version tag of the snapshot JSON schema.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// The memoization key of one operating-point query: scheme, target-BER
/// bits, temperature bucket and the thermal stack's ring-state fingerprint.
///
/// The temperature is quantized to the owning cache's bucket grid so the
/// microkelvin jitter of a thermal simulation cannot defeat the memo; the
/// stack fingerprint ([`crate::ThermalLinkStack::fingerprint`]) keeps
/// entries solved under one chip instance from ever aliasing another even
/// though heterogeneous fleets may share the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OpCacheKey {
    /// Coding scheme of the query.
    pub scheme: EccScheme,
    /// `f64::to_bits` of the target decoded BER.
    pub ber_bits: u64,
    /// Temperature bucket index on the cache's grid.
    pub bucket: i64,
    /// [`crate::ThermalLinkStack::fingerprint`] of the stack the query is
    /// solved under.
    pub stack_fingerprint: u64,
}

impl OpCacheKey {
    /// Mixes **every** field of the key into one 64-bit fingerprint — the
    /// value shard selection hashes on.  A field left out of this mix would
    /// still be covered by the full `Ord` comparison inside the shard map,
    /// but the lint contract (D003) keeps the mix and the struct in lock
    /// step anyway: un-hashed fields are how cache aliasing bugs start.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash = onoc_thermal::bank::fnv1a_seed();
        hash = onoc_thermal::bank::fnv1a_u64(hash, scheme_ordinal(self.scheme));
        hash = onoc_thermal::bank::fnv1a_u64(hash, self.ber_bits);
        hash = onoc_thermal::bank::fnv1a_u64(hash, self.bucket as u64);
        hash = onoc_thermal::bank::fnv1a_u64(hash, self.stack_fingerprint);
        onoc_thermal::bank::splitmix64_mix(hash)
    }

    /// The shard this key lives in, for `shard_count` shards.
    #[must_use]
    fn shard_index(&self, shard_count: usize) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        let index = (self.fingerprint() % shard_count as u64) as usize;
        index
    }
}

/// Stable ordinal of a scheme for hashing (independent of `label()` text).
fn scheme_ordinal(scheme: EccScheme) -> u64 {
    EccScheme::all()
        .iter()
        .position(|&s| s == scheme)
        .map_or(u64::MAX, |i| i as u64)
}

/// One memo slot: either a completed result or a claim by the thread
/// currently solving it.
#[derive(Debug, Clone)]
enum Slot {
    /// A thread has claimed the key and is running the solver; waiters block
    /// on the shard condvar until the claim resolves.
    InFlight,
    /// The memoized outcome (feasible point or cached infeasibility),
    /// boxed so the in-flight claim stays pointer-sized.
    Done(Box<Result<OperatingPoint, LinkError>>),
}

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<BTreeMap<OpCacheKey, Slot>>,
    filled: Condvar,
}

/// Locks one shard map, recovering from poisoning: entries are written
/// atomically under the lock, so a panicking peer cannot leave the map in a
/// half-written state — the data stays valid and the cache keeps serving.
fn lock_shard(shard: &Shard) -> MutexGuard<'_, BTreeMap<OpCacheKey, Slot>> {
    shard.map.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears a pending [`Slot::InFlight`] claim if the solver unwinds, so
/// waiters blocked on the condvar retry (and re-claim) instead of
/// deadlocking on a claim that will never resolve.
struct InFlightGuard<'a> {
    shard: &'a Shard,
    key: OpCacheKey,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut map = lock_shard(self.shard);
        if matches!(map.get(&self.key), Some(Slot::InFlight)) {
            map.remove(&self.key);
        }
        drop(map);
        self.shard.filled.notify_all();
    }
}

#[derive(Debug)]
struct CacheInner {
    buckets_per_kelvin: f64,
    /// Completed-entry bound of the bounded mode; `None` grows without limit.
    capacity: Option<usize>,
    shards: Vec<Shard>,
    /// Serializes eviction passes so two concurrent over-capacity inserts
    /// cannot both evict and undershoot the bound.
    evict: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Whether the completed-entry set has changed since the cache was
    /// built, loaded or last saved — the signal that lets sweep campaigns
    /// skip rewriting an unchanged snapshot.
    dirty: AtomicBool,
}

/// A cheaply-clonable handle on one shared operating-point cache.
///
/// Cloning the handle shares the underlying storage and counters; see
/// [`SharedOpCache::detached`] for an empty cache at the same resolution.
#[derive(Debug, Clone)]
pub struct SharedOpCache {
    inner: Arc<CacheInner>,
}

impl Default for SharedOpCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedOpCache {
    /// An empty cache at the default resolution
    /// ([`DEFAULT_BUCKETS_PER_KELVIN`]).
    #[must_use]
    pub fn new() -> Self {
        Self::new_with(DEFAULT_BUCKETS_PER_KELVIN, None)
    }

    /// An empty **bounded** cache at the default resolution: at most
    /// `capacity` completed entries are retained, with deterministic
    /// **key-ordered** eviction (the largest [`OpCacheKey`] goes first — not
    /// LRU, whose victim depends on timing).  After any sequence of solves
    /// the retained set is the `capacity` smallest keys ever completed,
    /// regardless of insertion order or thread interleaving, so
    /// billion-bucket sweeps run in fixed memory without losing the
    /// bit-identical accounting of phase-structured workloads.
    ///
    /// # Errors
    ///
    /// [`LinkError::InvalidConfiguration`] when `capacity` is zero — a cache
    /// that can hold nothing would turn every query into a fresh solve while
    /// still paying the claim protocol.
    pub fn with_capacity(capacity: usize) -> Result<Self, LinkError> {
        if capacity == 0 {
            return Err(LinkError::InvalidConfiguration {
                reason: "bounded cache capacity must be at least one entry".to_owned(),
            });
        }
        Ok(Self::new_with(DEFAULT_BUCKETS_PER_KELVIN, Some(capacity)))
    }

    /// An empty cache at `buckets_per_kelvin` resolution.
    ///
    /// # Errors
    ///
    /// [`LinkError::InvalidConfiguration`] when the resolution is zero,
    /// negative or not finite — a non-positive resolution would snap every
    /// temperature onto one bucket (or divide by zero).
    pub fn with_resolution(buckets_per_kelvin: f64) -> Result<Self, LinkError> {
        if !(buckets_per_kelvin > 0.0 && buckets_per_kelvin.is_finite()) {
            return Err(LinkError::InvalidConfiguration {
                reason: format!(
                    "cache resolution must be positive and finite, got {buckets_per_kelvin} \
                     buckets per kelvin"
                ),
            });
        }
        Ok(Self::new_with(buckets_per_kelvin, None))
    }

    /// Internal constructor over a pre-validated resolution.
    ///
    /// # Panics
    ///
    /// Panics if `buckets_per_kelvin` is not positive and finite (public
    /// entry points validate first).
    fn new_with(buckets_per_kelvin: f64, capacity: Option<usize>) -> Self {
        assert!(
            buckets_per_kelvin > 0.0 && buckets_per_kelvin.is_finite(),
            "cache resolution must be positive and finite"
        );
        Self {
            inner: Arc::new(CacheInner {
                buckets_per_kelvin,
                capacity,
                shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
                evict: Mutex::new(()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                dirty: AtomicBool::new(false),
            }),
        }
    }

    /// A fresh, empty, private cache at the same resolution (and capacity
    /// bound, if any) as this one — the pre-shared-cache "clone" semantics
    /// of [`crate::NanophotonicLink`].
    #[must_use]
    pub fn detached(&self) -> Self {
        Self::new_with(self.inner.buckets_per_kelvin, self.inner.capacity)
    }

    /// Completed-entry bound of the bounded mode; `None` when unbounded.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Whether two handles share the same underlying storage.
    #[must_use]
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Temperature resolution, in buckets per kelvin.
    #[must_use]
    pub fn buckets_per_kelvin(&self) -> f64 {
        self.inner.buckets_per_kelvin
    }

    /// Bucket index of `temperature` on this cache's grid.
    #[must_use]
    pub fn bucket(&self, temperature: Celsius) -> i64 {
        #[allow(clippy::cast_possible_truncation)]
        let bucket = (temperature.value() * self.inner.buckets_per_kelvin).round() as i64;
        bucket
    }

    /// Representative temperature of the bucket containing `temperature`.
    /// Exact (no rounding noise) whenever the input sits on a bucket centre.
    #[must_use]
    pub fn snap(&self, temperature: Celsius) -> Celsius {
        #[allow(clippy::cast_precision_loss)]
        let centre = self.bucket(temperature) as f64 / self.inner.buckets_per_kelvin;
        Celsius::new(centre)
    }

    /// Answers `key` from the cache, or claims it and runs `solve` exactly
    /// once fleet-wide.  Returns the memoized result and whether this call
    /// was a hit.
    ///
    /// Concurrent callers of the same key block until the claimant's solve
    /// resolves and are counted as hits — so for a fixed query multiset the
    /// counters are deterministic at any thread count: one miss per distinct
    /// key, everything else a hit.  If the claimant's `solve` panics, its
    /// claim is withdrawn and one of the waiters re-claims the key.
    pub fn get_or_solve<F>(
        &self,
        key: OpCacheKey,
        solve: F,
    ) -> (Result<OperatingPoint, LinkError>, bool)
    where
        F: FnOnce() -> Result<OperatingPoint, LinkError>,
    {
        let shard = &self.inner.shards[key.shard_index(self.inner.shards.len())];
        let mut map = lock_shard(shard);
        loop {
            match map.get(&key) {
                Some(Slot::Done(value)) => {
                    let value = value.as_ref().clone();
                    drop(map);
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    return (value, true);
                }
                Some(Slot::InFlight) => {
                    map = shard
                        .filled
                        .wait(map)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => break,
            }
        }
        map.insert(key, Slot::InFlight);
        drop(map);
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = InFlightGuard {
            shard,
            key,
            armed: true,
        };
        let solved = solve();
        let mut map = lock_shard(shard);
        map.insert(key, Slot::Done(Box::new(solved.clone())));
        self.inner.dirty.store(true, Ordering::Relaxed);
        guard.armed = false;
        drop(map);
        shard.filled.notify_all();
        self.enforce_capacity();
        (solved, false)
    }

    /// Evicts completed entries, largest key first, until the bounded
    /// cache's capacity holds.  A single pass lock (`evict`) serializes
    /// concurrent evictors — without it two threads crossing the bound
    /// together would both remove a key and undershoot — while shard locks
    /// are only ever taken one at a time, so no lock-order cycle exists.
    fn enforce_capacity(&self) {
        let Some(capacity) = self.inner.capacity else {
            return;
        };
        let _pass = self
            .inner
            .evict
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            let mut total = 0usize;
            let mut largest: Option<OpCacheKey> = None;
            for shard in &self.inner.shards {
                let map = lock_shard(shard);
                for (key, slot) in map.iter() {
                    if matches!(slot, Slot::Done(_)) {
                        total += 1;
                        if largest.is_none_or(|current| *key > current) {
                            largest = Some(*key);
                        }
                    }
                }
            }
            if total <= capacity {
                return;
            }
            let Some(victim) = largest else {
                return;
            };
            let shard = &self.inner.shards[victim.shard_index(self.inner.shards.len())];
            let mut map = lock_shard(shard);
            if matches!(map.get(&victim), Some(Slot::Done(_))) {
                map.remove(&victim);
                self.inner.dirty.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Aggregate hit/miss/entry counters of the whole cache.  `entries`
    /// counts completed results only (in-flight claims are transient).
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        let entries = self
            .inner
            .shards
            .iter()
            .map(|shard| {
                lock_shard(shard)
                    .values()
                    .filter(|slot| matches!(slot, Slot::Done(_)))
                    .count()
            })
            .sum();
        CacheCounters {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Empties the cache and resets its counters.  In-flight claims are left
    /// in place (their solvers will still complete and fill them).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            lock_shard(shard).retain(|_, slot| matches!(slot, Slot::InFlight));
        }
        self.inner.hits.store(0, Ordering::Relaxed);
        self.inner.misses.store(0, Ordering::Relaxed);
        self.inner.dirty.store(true, Ordering::Relaxed);
    }

    /// Whether the completed-entry set has changed since the cache was
    /// built, loaded from a snapshot, or last [`SharedOpCache::save`]d.  A
    /// clean cache's snapshot is already on disk byte-for-byte, so callers
    /// persisting between sweep runs can skip the rewrite.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.inner.dirty.load(Ordering::Relaxed)
    }

    /// Every completed entry, in key order (deterministic across shard
    /// layouts and fill interleavings).
    fn sorted_entries(&self) -> BTreeMap<OpCacheKey, Result<OperatingPoint, LinkError>> {
        let mut entries = BTreeMap::new();
        for shard in &self.inner.shards {
            for (key, slot) in lock_shard(shard).iter() {
                if let Slot::Done(value) = slot {
                    entries.insert(*key, value.as_ref().clone());
                }
            }
        }
        entries
    }

    /// Serializes the cache (resolution + every completed entry, sorted by
    /// key) as a JSON document.  Counters are *not* part of the snapshot:
    /// they describe one run's traffic, not the memo itself.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .sorted_entries()
            .iter()
            .map(|(key, value)| {
                let mut fields = vec![
                    ("scheme", Json::from(key.scheme.label())),
                    ("ber_bits", hex_json(key.ber_bits)),
                    ("bucket", i64_json(key.bucket)),
                    ("stack_fingerprint", hex_json(key.stack_fingerprint)),
                ];
                match value {
                    Ok(point) => fields.push(("point", operating_point_to_json(point))),
                    Err(error) => fields.push(("error", link_error_to_json(error))),
                }
                Json::obj(fields)
            })
            .collect();
        let mut fields = vec![
            ("schema_version", SNAPSHOT_SCHEMA_VERSION.into()),
            ("kind", "onoc-op-cache-snapshot".into()),
            (
                "buckets_per_kelvin",
                Json::Num(self.inner.buckets_per_kelvin),
            ),
        ];
        if let Some(capacity) = self.inner.capacity {
            fields.push(("capacity", usize_json(capacity)));
        }
        fields.push(("entries", Json::Arr(entries)));
        Json::obj(fields)
    }

    /// Rebuilds a cache from a [`SharedOpCache::to_json`] document.  The
    /// rebuilt cache starts with zeroed counters and every snapshot entry
    /// completed, so a warm-started run reports pure hits.
    ///
    /// # Errors
    ///
    /// [`LinkError::InvalidConfiguration`] when the document does not match
    /// the snapshot schema.
    pub fn from_json(document: &Json) -> Result<Self, LinkError> {
        let invalid = |reason: String| LinkError::InvalidConfiguration {
            reason: format!("cache snapshot: {reason}"),
        };
        let version = document
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| invalid("missing schema_version".into()))?;
        if version != SNAPSHOT_SCHEMA_VERSION {
            return Err(invalid(format!(
                "schema_version {version} (this build reads {SNAPSHOT_SCHEMA_VERSION})"
            )));
        }
        let buckets = document
            .get("buckets_per_kelvin")
            .and_then(Json::as_f64)
            .ok_or_else(|| invalid("missing buckets_per_kelvin".into()))?;
        // Snapshots from unbounded caches carry no capacity field.
        let capacity = match document.get("capacity") {
            None => None,
            Some(value) => Some(
                usize_from_json(Some(value), "capacity")
                    .map_err(&invalid)
                    .and_then(|n| {
                        if n == 0 {
                            Err(invalid("capacity must be at least one entry".into()))
                        } else {
                            Ok(n)
                        }
                    })?,
            ),
        };
        // Validate the resolution through the public constructor, then build
        // at the snapshot's capacity.
        Self::with_resolution(buckets)?;
        let cache = Self::new_with(buckets, capacity);
        let entries = document
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("missing entries array".into()))?;
        for entry in entries {
            let key = OpCacheKey {
                scheme: scheme_from_json(entry.get("scheme")).map_err(&invalid)?,
                ber_bits: hex_from_json(entry.get("ber_bits"), "ber_bits").map_err(&invalid)?,
                bucket: i64_from_json(entry.get("bucket"), "bucket").map_err(&invalid)?,
                stack_fingerprint: hex_from_json(
                    entry.get("stack_fingerprint"),
                    "stack_fingerprint",
                )
                .map_err(&invalid)?,
            };
            let value = if let Some(point) = entry.get("point") {
                Ok(operating_point_from_json(point).map_err(&invalid)?)
            } else if let Some(error) = entry.get("error") {
                Err(link_error_from_json(error).map_err(&invalid)?)
            } else {
                return Err(invalid("entry carries neither point nor error".into()));
            };
            let shard = &cache.inner.shards[key.shard_index(cache.inner.shards.len())];
            lock_shard(shard).insert(key, Slot::Done(Box::new(value)));
        }
        // An over-full snapshot (say, written unbounded and re-opened with a
        // hand-edited capacity) settles to the same key-ordered retained set
        // a live run would have kept.
        cache.enforce_capacity();
        Ok(cache)
    }

    /// Writes the snapshot to `path` (pretty-rendered JSON, trailing
    /// newline).  The bytes are deterministic for a given set of entries.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        // Clear the flag *before* serializing: an entry that lands while the
        // snapshot renders may miss the file, but it re-dirties the cache so
        // the next save picks it up (clearing after would lose it).
        self.inner.dirty.store(false, Ordering::Relaxed);
        let rendered = self.to_json().render_pretty();
        let result = std::fs::write(path, rendered);
        if result.is_err() {
            self.inner.dirty.store(true, Ordering::Relaxed);
        }
        result
    }

    /// Reads a snapshot written by [`SharedOpCache::save`].
    ///
    /// # Errors
    ///
    /// [`LinkError::InvalidConfiguration`] when the file cannot be read or
    /// does not parse as a snapshot.
    pub fn load(path: &Path) -> Result<Self, LinkError> {
        let body = std::fs::read_to_string(path).map_err(|e| LinkError::InvalidConfiguration {
            reason: format!("cache snapshot {}: {e}", path.display()),
        })?;
        let document = Json::parse(&body).map_err(|e| LinkError::InvalidConfiguration {
            reason: format!("cache snapshot {}: {e}", path.display()),
        })?;
        Self::from_json(&document)
    }
}

// ---------------------------------------------------------------------------
// Snapshot component serializers.
//
// The workspace's `serde` is an inert compat stub, so the operating-point
// tree is written and read by hand through the telemetry JSON kernel.  Two
// representation rules keep the round trip exact:
//
// * every `f64` goes through `Json::Num`, whose writer emits the shortest
//   representation that parses back bit-identically (finite values);
// * full-range `u64`s (BER bits, fingerprints) are hex *strings* — a JSON
//   number is an `f64` and only exact up to 2^53.
// ---------------------------------------------------------------------------

fn hex_json(value: u64) -> Json {
    Json::from(format!("{value:#018x}"))
}

#[allow(clippy::cast_precision_loss)]
fn i64_json(value: i64) -> Json {
    // Bucket indices and barrel shifts are tiny (|x| < 2^20); the cast is
    // exact by construction.
    Json::Num(value as f64)
}

fn usize_json(value: usize) -> Json {
    Json::from(value)
}

fn hex_from_json(value: Option<&Json>, field: &str) -> Result<u64, String> {
    let text = value
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing hex field `{field}`"))?;
    let digits = text
        .strip_prefix("0x")
        .ok_or_else(|| format!("field `{field}` is not 0x-prefixed hex: {text:?}"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("field `{field}`: {e}"))
}

fn f64_from_json(value: Option<&Json>, field: &str) -> Result<f64, String> {
    value
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field `{field}`"))
}

#[allow(clippy::cast_possible_truncation)]
fn i64_from_json(value: Option<&Json>, field: &str) -> Result<i64, String> {
    f64_from_json(value, field).map(|v| v as i64)
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn usize_from_json(value: Option<&Json>, field: &str) -> Result<usize, String> {
    f64_from_json(value, field).map(|v| v as usize)
}

fn scheme_from_json(value: Option<&Json>) -> Result<EccScheme, String> {
    let label = value
        .and_then(Json::as_str)
        .ok_or_else(|| "missing scheme label".to_owned())?;
    EccScheme::all()
        .into_iter()
        .find(|s| s.label() == label)
        .ok_or_else(|| format!("unknown scheme label {label:?}"))
}

fn laser_to_json(laser: &LaserOperatingPoint) -> Json {
    Json::obj(vec![
        ("scheme", Json::from(laser.scheme.label())),
        ("target_ber", Json::Num(laser.target_ber)),
        ("raw_ber", Json::Num(laser.raw_ber)),
        ("snr", Json::Num(laser.snr)),
        ("crosstalk_uw", Json::Num(laser.crosstalk.value())),
        ("required_swing_uw", Json::Num(laser.required_swing.value())),
        (
            "laser_output_power_uw",
            Json::Num(laser.laser_output_power.value()),
        ),
        (
            "laser_electrical_power_mw",
            Json::Num(laser.laser_electrical_power.value()),
        ),
        ("laser_efficiency", Json::Num(laser.laser_efficiency)),
    ])
}

fn laser_from_json(value: &Json) -> Result<LaserOperatingPoint, String> {
    Ok(LaserOperatingPoint {
        scheme: scheme_from_json(value.get("scheme"))?,
        target_ber: f64_from_json(value.get("target_ber"), "target_ber")?,
        raw_ber: f64_from_json(value.get("raw_ber"), "raw_ber")?,
        snr: f64_from_json(value.get("snr"), "snr")?,
        crosstalk: Microwatts::new(f64_from_json(value.get("crosstalk_uw"), "crosstalk_uw")?),
        required_swing: Microwatts::new(f64_from_json(
            value.get("required_swing_uw"),
            "required_swing_uw",
        )?),
        laser_output_power: Microwatts::new(f64_from_json(
            value.get("laser_output_power_uw"),
            "laser_output_power_uw",
        )?),
        laser_electrical_power: Milliwatts::new(f64_from_json(
            value.get("laser_electrical_power_mw"),
            "laser_electrical_power_mw",
        )?),
        laser_efficiency: f64_from_json(value.get("laser_efficiency"), "laser_efficiency")?,
    })
}

fn power_to_json(power: &ChannelPowerBreakdown) -> Json {
    Json::obj(vec![
        ("scheme", Json::from(power.scheme.label())),
        (
            "encoder_decoder_mw",
            Json::Num(power.encoder_decoder.value()),
        ),
        ("modulation_mw", Json::Num(power.modulation.value())),
        ("laser_mw", Json::Num(power.laser.value())),
        ("tuning_mw", Json::Num(power.tuning.value())),
    ])
}

fn power_from_json(value: &Json) -> Result<ChannelPowerBreakdown, String> {
    Ok(ChannelPowerBreakdown {
        scheme: scheme_from_json(value.get("scheme"))?,
        encoder_decoder: Milliwatts::new(f64_from_json(
            value.get("encoder_decoder_mw"),
            "encoder_decoder_mw",
        )?),
        modulation: Milliwatts::new(f64_from_json(value.get("modulation_mw"), "modulation_mw")?),
        laser: Milliwatts::new(f64_from_json(value.get("laser_mw"), "laser_mw")?),
        tuning: Milliwatts::new(f64_from_json(value.get("tuning_mw"), "tuning_mw")?),
    })
}

fn timing_to_json(timing: &CommunicationTiming) -> Json {
    Json::obj(vec![
        ("scheme", Json::from(timing.scheme.label())),
        (
            "communication_time_factor",
            Json::Num(timing.communication_time_factor),
        ),
        ("bits_per_lane", Json::Num(timing.bits_per_lane)),
        (
            "serialization_time_ns",
            Json::Num(timing.serialization_time.value()),
        ),
        ("codec_latency_ns", Json::Num(timing.codec_latency.value())),
        ("total_latency_ns", Json::Num(timing.total_latency.value())),
    ])
}

fn timing_from_json(value: &Json) -> Result<CommunicationTiming, String> {
    Ok(CommunicationTiming {
        scheme: scheme_from_json(value.get("scheme"))?,
        communication_time_factor: f64_from_json(
            value.get("communication_time_factor"),
            "communication_time_factor",
        )?,
        bits_per_lane: f64_from_json(value.get("bits_per_lane"), "bits_per_lane")?,
        serialization_time: Nanoseconds::new(f64_from_json(
            value.get("serialization_time_ns"),
            "serialization_time_ns",
        )?),
        codec_latency: Nanoseconds::new(f64_from_json(
            value.get("codec_latency_ns"),
            "codec_latency_ns",
        )?),
        total_latency: Nanoseconds::new(f64_from_json(
            value.get("total_latency_ns"),
            "total_latency_ns",
        )?),
    })
}

fn thermal_to_json(thermal: &ThermalSummary) -> Json {
    Json::obj(vec![
        ("temperature_c", Json::Num(thermal.temperature.value())),
        ("free_drift_nm", Json::Num(thermal.free_drift.nanometers())),
        (
            "residual_drift_nm",
            Json::Num(thermal.residual_drift.nanometers()),
        ),
        (
            "tuning_power_per_ring_uw",
            Json::Num(thermal.tuning_power_per_ring.value()),
        ),
        ("rings_per_lane", usize_json(thermal.rings_per_lane)),
        (
            "tuning_power_per_lane_mw",
            Json::Num(thermal.tuning_power_per_lane.value()),
        ),
        ("barrel_shift", i64_json(thermal.barrel_shift)),
        ("worst_lane", usize_json(thermal.worst_lane)),
    ])
}

fn thermal_from_json(value: &Json) -> Result<ThermalSummary, String> {
    Ok(ThermalSummary {
        temperature: Celsius::new(f64_from_json(value.get("temperature_c"), "temperature_c")?),
        free_drift: ResonanceDrift::new(f64_from_json(
            value.get("free_drift_nm"),
            "free_drift_nm",
        )?),
        residual_drift: ResonanceDrift::new(f64_from_json(
            value.get("residual_drift_nm"),
            "residual_drift_nm",
        )?),
        tuning_power_per_ring: Microwatts::new(f64_from_json(
            value.get("tuning_power_per_ring_uw"),
            "tuning_power_per_ring_uw",
        )?),
        rings_per_lane: usize_from_json(value.get("rings_per_lane"), "rings_per_lane")?,
        tuning_power_per_lane: Milliwatts::new(f64_from_json(
            value.get("tuning_power_per_lane_mw"),
            "tuning_power_per_lane_mw",
        )?),
        barrel_shift: i64_from_json(value.get("barrel_shift"), "barrel_shift")?,
        worst_lane: usize_from_json(value.get("worst_lane"), "worst_lane")?,
    })
}

fn operating_point_to_json(point: &OperatingPoint) -> Json {
    Json::obj(vec![
        ("laser", laser_to_json(&point.laser)),
        ("power", power_to_json(&point.power)),
        ("channel_power_mw", Json::Num(point.channel_power.value())),
        ("timing", timing_to_json(&point.timing)),
        ("energy_per_bit_pj", Json::Num(point.energy_per_bit.value())),
        ("thermal", thermal_to_json(&point.thermal)),
    ])
}

fn operating_point_from_json(value: &Json) -> Result<OperatingPoint, String> {
    Ok(OperatingPoint {
        laser: laser_from_json(
            value
                .get("laser")
                .ok_or_else(|| "missing laser section".to_owned())?,
        )?,
        power: power_from_json(
            value
                .get("power")
                .ok_or_else(|| "missing power section".to_owned())?,
        )?,
        channel_power: Milliwatts::new(f64_from_json(
            value.get("channel_power_mw"),
            "channel_power_mw",
        )?),
        timing: timing_from_json(
            value
                .get("timing")
                .ok_or_else(|| "missing timing section".to_owned())?,
        )?,
        energy_per_bit: PicojoulesPerBit::new(f64_from_json(
            value.get("energy_per_bit_pj"),
            "energy_per_bit_pj",
        )?),
        thermal: thermal_from_json(
            value
                .get("thermal")
                .ok_or_else(|| "missing thermal section".to_owned())?,
        )?,
    })
}

fn solve_error_to_json(error: &SolveError) -> Json {
    match error {
        SolveError::LaserPowerExceeded {
            scheme,
            target_ber,
            required_microwatts,
            maximum_microwatts,
        } => Json::obj(vec![
            ("kind", "laser_power_exceeded".into()),
            ("scheme", Json::from(scheme.label())),
            ("target_ber", Json::Num(*target_ber)),
            ("required_microwatts", Json::Num(*required_microwatts)),
            ("maximum_microwatts", Json::Num(*maximum_microwatts)),
        ]),
        SolveError::InvalidTarget { target_ber } => Json::obj(vec![
            ("kind", "invalid_target".into()),
            ("target_ber", Json::Num(*target_ber)),
        ]),
        SolveError::ThermalRunaway {
            scheme,
            target_ber,
            optical_microwatts,
        } => Json::obj(vec![
            ("kind", "thermal_runaway".into()),
            ("scheme", Json::from(scheme.label())),
            ("target_ber", Json::Num(*target_ber)),
            ("optical_microwatts", Json::Num(*optical_microwatts)),
        ]),
    }
}

fn solve_error_from_json(value: &Json) -> Result<SolveError, String> {
    match value.get("kind").and_then(Json::as_str) {
        Some("laser_power_exceeded") => Ok(SolveError::LaserPowerExceeded {
            scheme: scheme_from_json(value.get("scheme"))?,
            target_ber: f64_from_json(value.get("target_ber"), "target_ber")?,
            required_microwatts: f64_from_json(
                value.get("required_microwatts"),
                "required_microwatts",
            )?,
            maximum_microwatts: f64_from_json(
                value.get("maximum_microwatts"),
                "maximum_microwatts",
            )?,
        }),
        Some("invalid_target") => Ok(SolveError::InvalidTarget {
            target_ber: f64_from_json(value.get("target_ber"), "target_ber")?,
        }),
        Some("thermal_runaway") => Ok(SolveError::ThermalRunaway {
            scheme: scheme_from_json(value.get("scheme"))?,
            target_ber: f64_from_json(value.get("target_ber"), "target_ber")?,
            optical_microwatts: f64_from_json(
                value.get("optical_microwatts"),
                "optical_microwatts",
            )?,
        }),
        other => Err(format!("unknown solve-error kind {other:?}")),
    }
}

fn link_error_to_json(error: &LinkError) -> Json {
    match error {
        LinkError::Infeasible(solve) => Json::obj(vec![
            ("kind", "infeasible".into()),
            ("solve", solve_error_to_json(solve)),
        ]),
        LinkError::SchemeNotSustainable { scheme } => Json::obj(vec![
            ("kind", "scheme_not_sustainable".into()),
            ("scheme", Json::from(scheme.label())),
        ]),
        LinkError::InvalidConfiguration { reason } => Json::obj(vec![
            ("kind", "invalid_configuration".into()),
            ("reason", Json::from(reason.as_str())),
        ]),
    }
}

fn link_error_from_json(value: &Json) -> Result<LinkError, String> {
    match value.get("kind").and_then(Json::as_str) {
        Some("infeasible") => Ok(LinkError::Infeasible(solve_error_from_json(
            value
                .get("solve")
                .ok_or_else(|| "missing solve section".to_owned())?,
        )?)),
        Some("scheme_not_sustainable") => Ok(LinkError::SchemeNotSustainable {
            scheme: scheme_from_json(value.get("scheme"))?,
        }),
        Some("invalid_configuration") => Ok(LinkError::InvalidConfiguration {
            reason: value
                .get("reason")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing reason".to_owned())?
                .to_owned(),
        }),
        other => Err(format!("unknown link-error kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::NanophotonicLink;
    use proptest::prelude::*;

    fn key(scheme: EccScheme, bucket: i64) -> OpCacheKey {
        OpCacheKey {
            scheme,
            ber_bits: 1e-11f64.to_bits(),
            bucket,
            stack_fingerprint: 0xDEAD_BEEF_0BAD_CAFE,
        }
    }

    fn sample_point() -> OperatingPoint {
        NanophotonicLink::paper_link()
            .operating_point(EccScheme::Hamming7164, 1e-11)
            .unwrap()
    }

    #[test]
    fn fingerprint_depends_on_every_field() {
        let base = key(EccScheme::Hamming74, 500);
        let variants = [
            OpCacheKey {
                scheme: EccScheme::Uncoded,
                ..base
            },
            OpCacheKey {
                ber_bits: 1e-9f64.to_bits(),
                ..base
            },
            OpCacheKey {
                bucket: 501,
                ..base
            },
            OpCacheKey {
                stack_fingerprint: 1,
                ..base
            },
        ];
        for variant in variants {
            assert_ne!(variant.fingerprint(), base.fingerprint(), "{variant:?}");
        }
    }

    #[test]
    fn solve_once_counts_one_miss_per_distinct_key() {
        let cache = SharedOpCache::new();
        let point = sample_point();
        let keys: Vec<OpCacheKey> = (0..5).map(|b| key(EccScheme::Hamming74, b)).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = cache.clone();
                let keys = keys.clone();
                scope.spawn(move || {
                    for k in keys {
                        let (result, _) = cache.get_or_solve(k, || Ok(point));
                        assert_eq!(result.unwrap(), point);
                    }
                });
            }
        });
        let counters = cache.counters();
        assert_eq!(counters.misses, 5, "exactly one solve per distinct key");
        assert_eq!(counters.hits, 8 * 5 - 5);
        assert_eq!(counters.entries, 5);
    }

    #[test]
    fn panicking_solver_releases_its_claim() {
        let cache = SharedOpCache::new();
        let k = key(EccScheme::Uncoded, 42);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_solve(k, || panic!("solver exploded"))
        }));
        assert!(result.is_err());
        // The claim is withdrawn: the next caller re-solves instead of
        // deadlocking on a forever-InFlight slot.
        let point = sample_point();
        let (value, hit) = cache.get_or_solve(k, || Ok(point));
        assert!(!hit);
        assert_eq!(value.unwrap(), point);
        assert_eq!(cache.counters().entries, 1);
    }

    #[test]
    fn clones_share_detached_copies_do_not() {
        let cache = SharedOpCache::new();
        let shared = cache.clone();
        assert!(cache.ptr_eq(&shared));
        let point = sample_point();
        let _ = cache.get_or_solve(key(EccScheme::Hamming74, 1), || Ok(point));
        assert_eq!(shared.counters().entries, 1);
        let detached = cache.detached();
        assert!(!cache.ptr_eq(&detached));
        assert_eq!(detached.counters(), CacheCounters::default());
        assert_eq!(detached.buckets_per_kelvin(), cache.buckets_per_kelvin());
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = SharedOpCache::new();
        let point = sample_point();
        let _ = cache.get_or_solve(key(EccScheme::Hamming74, 1), || Ok(point));
        let _ = cache.get_or_solve(key(EccScheme::Hamming74, 1), || Ok(point));
        assert_eq!(cache.counters().hits, 1);
        cache.clear();
        assert_eq!(cache.counters(), CacheCounters::default());
    }

    #[test]
    fn resolution_is_validated() {
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(SharedOpCache::with_resolution(bad).is_err(), "{bad}");
        }
        let coarse = SharedOpCache::with_resolution(1.0).unwrap();
        assert!((coarse.snap(Celsius::new(55.4)).value() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_points_and_errors() {
        let link = NanophotonicLink::paper_link();
        let cache = SharedOpCache::new();
        // Populate with real solver outputs: feasible points at several
        // temperatures plus a memoized infeasibility.
        for (scheme, t) in [
            (EccScheme::Hamming7164, 25.0),
            (EccScheme::Hamming74, 55.0),
            (EccScheme::Uncoded, 45.0),
        ] {
            let k = OpCacheKey {
                scheme,
                ber_bits: 1e-11f64.to_bits(),
                bucket: cache.bucket(Celsius::new(t)),
                stack_fingerprint: link.stack_fingerprint(),
            };
            let (result, _) = cache.get_or_solve(k, || {
                link.operating_point_at(scheme, 1e-11, cache.snap(Celsius::new(t)))
            });
            assert!(result.is_ok());
        }
        let hot = OpCacheKey {
            scheme: EccScheme::Uncoded,
            ber_bits: 1e-11f64.to_bits(),
            bucket: cache.bucket(Celsius::new(85.0)),
            stack_fingerprint: link.stack_fingerprint(),
        };
        let (err, _) = cache.get_or_solve(hot, || {
            link.operating_point_at(EccScheme::Uncoded, 1e-11, Celsius::new(85.0))
        });
        assert!(err.is_err());

        let document = cache.to_json();
        let rendered = document.render_pretty();
        let reparsed = Json::parse(&rendered).unwrap();
        assert_eq!(reparsed, document, "snapshot survives render -> parse");
        let rebuilt = SharedOpCache::from_json(&reparsed).unwrap();
        assert_eq!(rebuilt.counters().entries, 4);
        assert_eq!(rebuilt.counters().hits, 0, "counters are not persisted");
        // Every original entry is answered as a pure hit, bit-identically.
        for (key, value) in cache.sorted_entries() {
            let (rebuilt_value, hit) =
                rebuilt.get_or_solve(key, || panic!("warm cache must not re-solve"));
            assert!(hit);
            assert_eq!(rebuilt_value, value);
        }
        // And the snapshot bytes themselves are deterministic.
        assert_eq!(rendered, rebuilt.to_json().render_pretty());
    }

    #[test]
    fn snapshot_file_round_trip_and_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join("onoc_op_cache_snapshot_test.json");
        let link = NanophotonicLink::paper_link();
        let cache = SharedOpCache::new();
        let k = OpCacheKey {
            scheme: EccScheme::Hamming74,
            ber_bits: 1e-11f64.to_bits(),
            bucket: cache.bucket(Celsius::new(40.0)),
            stack_fingerprint: link.stack_fingerprint(),
        };
        let _ = cache.get_or_solve(k, || {
            link.operating_point_at(EccScheme::Hamming74, 1e-11, cache.snap(Celsius::new(40.0)))
        });
        cache.save(&path).unwrap();
        let loaded = SharedOpCache::load(&path).unwrap();
        assert_eq!(loaded.counters().entries, 1);
        std::fs::remove_file(&path).unwrap();
        assert!(
            SharedOpCache::load(&path).is_err(),
            "missing file is an error"
        );
        assert!(matches!(
            SharedOpCache::from_json(&Json::obj(vec![("schema_version", 99u64.into())])),
            Err(LinkError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn dirty_flag_tracks_entry_set_changes_across_the_snapshot_lifecycle() {
        let point = sample_point();
        let cache = SharedOpCache::new();
        assert!(!cache.is_dirty(), "a fresh cache has nothing to persist");
        // A pure hit does not dirty; a miss-insert does.
        let _ = cache.get_or_solve(key(EccScheme::Hamming74, 1), || Ok(point));
        assert!(cache.is_dirty(), "a new entry must dirty the cache");
        let dir = std::env::temp_dir();
        let path = dir.join("onoc_op_cache_dirty_test.json");
        cache.save(&path).unwrap();
        assert!(!cache.is_dirty(), "saving writes the entry set out");
        let _ = cache.get_or_solve(key(EccScheme::Hamming74, 1), || Ok(point));
        assert!(
            !cache.is_dirty(),
            "answering from the cache adds nothing to persist"
        );
        // A warm-started cache is clean until it learns something new.
        let loaded = SharedOpCache::load(&path).unwrap();
        assert!(!loaded.is_dirty(), "a loaded snapshot is already on disk");
        let _ = loaded.get_or_solve(key(EccScheme::Hamming74, 1), || {
            panic!("warm cache must not re-solve")
        });
        assert!(!loaded.is_dirty());
        let _ = loaded.get_or_solve(key(EccScheme::Hamming74, 2), || Ok(point));
        assert!(loaded.is_dirty(), "a fresh solve must dirty the cache");
        // Clearing and evicting change the retained set too.
        let cleared = SharedOpCache::load(&path).unwrap();
        cleared.clear();
        assert!(cleared.is_dirty());
        let bounded = SharedOpCache::with_capacity(1).unwrap();
        let _ = bounded.get_or_solve(key(EccScheme::Hamming74, 1), || Ok(point));
        bounded.save(&path).unwrap();
        assert!(!bounded.is_dirty());
        let _ = bounded.get_or_solve(key(EccScheme::Hamming74, 2), || Ok(point));
        assert!(bounded.is_dirty(), "eviction changes the retained set");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn thermal_runaway_errors_round_trip_through_snapshots() {
        let error = LinkError::Infeasible(SolveError::ThermalRunaway {
            scheme: EccScheme::Uncoded,
            target_ber: 1e-11,
            optical_microwatts: 612.5,
        });
        let rebuilt = link_error_from_json(&link_error_to_json(&error)).unwrap();
        assert_eq!(rebuilt, error);
    }

    #[test]
    fn bounded_capacity_is_validated_and_propagates_to_detached_copies() {
        assert!(matches!(
            SharedOpCache::with_capacity(0),
            Err(LinkError::InvalidConfiguration { .. })
        ));
        let cache = SharedOpCache::with_capacity(7).unwrap();
        assert_eq!(cache.capacity(), Some(7));
        assert_eq!(cache.detached().capacity(), Some(7));
        assert_eq!(SharedOpCache::new().capacity(), None);
    }

    #[test]
    fn bounded_cache_retains_the_smallest_keys_in_key_order() {
        let cache = SharedOpCache::with_capacity(3).unwrap();
        let point = sample_point();
        // Scrambled insertion order; the retained set must not depend on it.
        for bucket in [9i64, 2, 7, 4, 1, 8, 3] {
            let _ = cache.get_or_solve(key(EccScheme::Hamming74, bucket), || Ok(point));
        }
        let retained: Vec<i64> = cache.sorted_entries().keys().map(|k| k.bucket).collect();
        assert_eq!(retained, vec![1, 2, 3], "capacity keeps the smallest keys");
        let counters = cache.counters();
        assert_eq!(counters.misses, 7, "every distinct key solved once");
        assert_eq!(counters.entries, 3);
        // A re-query of an evicted key re-solves (miss), then is evicted
        // again because it is larger than every retained key.
        let (_, hit) = cache.get_or_solve(key(EccScheme::Hamming74, 9), || Ok(point));
        assert!(!hit);
        assert_eq!(
            cache
                .sorted_entries()
                .keys()
                .map(|k| k.bucket)
                .collect::<Vec<i64>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn bounded_snapshot_round_trips_capacity_and_trims_overfull_documents() {
        let cache = SharedOpCache::with_capacity(2).unwrap();
        let point = sample_point();
        for bucket in [5i64, 3, 8] {
            let _ = cache.get_or_solve(key(EccScheme::Hamming74, bucket), || Ok(point));
        }
        let rebuilt = SharedOpCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(rebuilt.capacity(), Some(2));
        assert_eq!(rebuilt.counters().entries, 2);
        // An unbounded snapshot re-read is still unbounded.
        let unbounded = SharedOpCache::new();
        let _ = unbounded.get_or_solve(key(EccScheme::Hamming74, 1), || Ok(point));
        assert_eq!(
            SharedOpCache::from_json(&unbounded.to_json())
                .unwrap()
                .capacity(),
            None
        );
    }

    /// Two-phase bounded workload whose accounting is order-independent:
    /// phase 1 solves every key exactly once (split across threads), phase 2
    /// re-queries every key exactly once.  Retained keys answer as hits,
    /// evicted keys re-solve — and because eviction is key-ordered, which
    /// keys survive does not depend on the interleaving.
    fn bounded_run(n: usize, cap: usize, threads: usize) -> (u64, u64, usize, Vec<i64>) {
        let cache = SharedOpCache::with_capacity(cap).unwrap();
        let point = sample_point();
        let keys: Vec<OpCacheKey> = (0..n)
            .map(|b| key(EccScheme::Hamming74, b as i64))
            .collect();
        for _phase in 0..2 {
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let cache = cache.clone();
                    let keys = keys.clone();
                    scope.spawn(move || {
                        for k in keys.into_iter().skip(t).step_by(threads) {
                            let (result, _) = cache.get_or_solve(k, || Ok(point));
                            assert!(result.is_ok());
                        }
                    });
                }
            });
        }
        let counters = cache.counters();
        let retained: Vec<i64> = cache.sorted_entries().keys().map(|k| k.bucket).collect();
        (counters.hits, counters.misses, counters.entries, retained)
    }

    proptest! {
        #[test]
        fn bounded_accounting_is_bit_identical_at_thread_counts_1_and_4(
            n in 1usize..40,
            cap in 1usize..40,
        ) {
            let serial = bounded_run(n, cap, 1);
            let sharded = bounded_run(n, cap, 4);
            prop_assert_eq!(&serial, &sharded);
            let survivors = cap.min(n);
            // Phase 1: one miss per distinct key.  Phase 2: retained keys
            // hit, evicted keys re-solve.
            prop_assert_eq!(serial.0, survivors as u64);
            prop_assert_eq!(serial.1, (n + n - survivors) as u64);
            prop_assert_eq!(serial.2, survivors);
            let expected: Vec<i64> = (0..survivors as i64).collect();
            prop_assert_eq!(serial.3, expected);
        }
    }
}
