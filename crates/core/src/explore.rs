//! Design-space exploration: BER sweeps, Pareto fronts and code ablations.
//!
//! Fig. 5 of the paper sweeps the target BER from 10⁻³ to 10⁻¹² for the three
//! coding configurations; Fig. 6b plots the resulting power/communication-time
//! trade-off and observes that every configuration sits on the Pareto front.
//! This module provides those sweeps, generic Pareto extraction, and the
//! code-length ablation (`A1` in DESIGN.md) over the full Hamming family.

use onoc_ecc_codes::EccScheme;
use onoc_units::Celsius;
use serde::{Deserialize, Serialize};

use crate::link::{NanophotonicLink, OperatingPoint};

/// One point of the power/performance trade-off plane (Fig. 6b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The underlying operating point.
    pub point: OperatingPoint,
    /// `true` when no other evaluated point dominates this one
    /// (lower-or-equal power *and* lower-or-equal communication time, with at
    /// least one strict improvement).
    pub on_front: bool,
}

/// A design-space exploration over a set of schemes and BER targets.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    link: NanophotonicLink,
    schemes: Vec<EccScheme>,
    ber_targets: Vec<f64>,
    temperature: Option<Celsius>,
}

impl DesignSpace {
    /// Creates an exploration over the given schemes and BER targets.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty.
    #[must_use]
    pub fn new(link: NanophotonicLink, schemes: Vec<EccScheme>, ber_targets: Vec<f64>) -> Self {
        assert!(!schemes.is_empty(), "at least one scheme is required");
        assert!(
            !ber_targets.is_empty(),
            "at least one BER target is required"
        );
        Self {
            link,
            schemes,
            ber_targets,
            temperature: None,
        }
    }

    /// Re-anchors the whole exploration at a chip temperature: every
    /// evaluated point then charges laser + modulation + coding **+ tuning**
    /// power at that temperature, so the Pareto fronts shift as the chip
    /// heats.
    #[must_use]
    pub fn at_temperature(mut self, temperature: Celsius) -> Self {
        self.temperature = Some(temperature);
        self
    }

    /// Temperature the sweep is anchored at (`None` = calibration ambient).
    #[must_use]
    pub fn temperature(&self) -> Option<Celsius> {
        self.temperature
    }

    fn point(&self, scheme: EccScheme, ber: f64) -> Option<OperatingPoint> {
        match self.temperature {
            Some(t) => self.link.operating_point_at(scheme, ber, t).ok(),
            None => self.link.operating_point(scheme, ber).ok(),
        }
    }

    /// The exploration behind Figs. 5 and 6 of the paper: the three paper
    /// schemes over BER targets 10⁻³ … 10⁻¹².
    #[must_use]
    pub fn paper_sweep() -> Self {
        Self::new(
            NanophotonicLink::paper_link(),
            EccScheme::paper_schemes().to_vec(),
            decade_targets(3, 12),
        )
    }

    /// The code-length ablation: every Hamming/SECDED variant in the
    /// registry, same BER range.
    #[must_use]
    pub fn code_ablation() -> Self {
        Self::new(
            NanophotonicLink::paper_link(),
            EccScheme::all(),
            decade_targets(3, 12),
        )
    }

    /// Schemes being explored.
    #[must_use]
    pub fn schemes(&self) -> &[EccScheme] {
        &self.schemes
    }

    /// BER targets being explored.
    #[must_use]
    pub fn ber_targets(&self) -> &[f64] {
        &self.ber_targets
    }

    /// The link under exploration.
    #[must_use]
    pub fn link(&self) -> &NanophotonicLink {
        &self.link
    }

    /// Evaluates all (scheme, BER) pairs, dropping infeasible ones.
    #[must_use]
    pub fn evaluate_all(&self) -> Vec<OperatingPoint> {
        let mut points = Vec::new();
        for &ber in &self.ber_targets {
            for &scheme in &self.schemes {
                if let Some(point) = self.point(scheme, ber) {
                    points.push(point);
                }
            }
        }
        points
    }

    /// Evaluates one BER column of the sweep (one Fig. 6a bar group).
    #[must_use]
    pub fn evaluate_at(&self, target_ber: f64) -> Vec<OperatingPoint> {
        self.schemes
            .iter()
            .filter_map(|&scheme| self.point(scheme, target_ber))
            .collect()
    }

    /// Laser-power rows of Fig. 5: for every scheme, the laser electrical
    /// power at each BER target (`None` where infeasible).
    #[must_use]
    pub fn laser_power_sweep(&self) -> Vec<(EccScheme, Vec<Option<f64>>)> {
        self.schemes
            .iter()
            .map(|&scheme| {
                let row = self
                    .ber_targets
                    .iter()
                    .map(|&ber| {
                        self.point(scheme, ber)
                            .map(|p| p.laser.laser_electrical_power.value())
                    })
                    .collect();
                (scheme, row)
            })
            .collect()
    }

    /// Marks every evaluated point with its Pareto-front membership in the
    /// (channel power, communication time) plane.
    #[must_use]
    pub fn pareto_front(&self, target_ber: f64) -> Vec<ParetoPoint> {
        let points = self.evaluate_at(target_ber);
        mark_pareto(&points)
    }
}

/// Marks Pareto-optimal points among `points` in the (channel power,
/// communication-time) plane (both minimised).
#[must_use]
pub fn mark_pareto(points: &[OperatingPoint]) -> Vec<ParetoPoint> {
    points
        .iter()
        .map(|candidate| {
            let dominated = points.iter().any(|other| {
                let better_power = other.channel_power.value() <= candidate.channel_power.value();
                let better_time =
                    other.communication_time_factor() <= candidate.communication_time_factor();
                let strictly = other.channel_power.value() < candidate.channel_power.value()
                    || other.communication_time_factor() < candidate.communication_time_factor();
                better_power && better_time && strictly
            });
            ParetoPoint {
                point: *candidate,
                on_front: !dominated,
            }
        })
        .collect()
}

/// BER targets 10^-lo … 10^-hi, one per decade.
#[must_use]
pub fn decade_targets(lo: i32, hi: i32) -> Vec<f64> {
    assert!(lo <= hi, "lo must not exceed hi");
    (lo..=hi).map(|e| 10f64.powi(-e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decade_targets_span_the_requested_range() {
        let t = decade_targets(3, 12);
        assert_eq!(t.len(), 10);
        assert!((t[0] - 1e-3).abs() < 1e-18);
        assert!((t[9] - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn paper_sweep_covers_most_of_the_grid() {
        let sweep = DesignSpace::paper_sweep();
        let points = sweep.evaluate_all();
        // 3 schemes × 10 targets = 30 cells; only the uncoded 1e-12 (and
        // possibly nothing else) is infeasible.
        assert!(points.len() >= 28, "only {} feasible points", points.len());
        assert!(points.len() < 30);
    }

    #[test]
    fn laser_power_sweep_reproduces_fig5_ordering() {
        let sweep = DesignSpace::paper_sweep();
        let rows = sweep.laser_power_sweep();
        let row = |s: EccScheme| {
            rows.iter()
                .find(|(scheme, _)| *scheme == s)
                .map(|(_, r)| r.clone())
                .unwrap()
        };
        let uncoded = row(EccScheme::Uncoded);
        let h74 = row(EccScheme::Hamming74);
        let h7164 = row(EccScheme::Hamming7164);
        for i in 0..uncoded.len() {
            if let (Some(u), Some(a), Some(b)) = (uncoded[i], h7164[i], h74[i]) {
                assert!(
                    u > a,
                    "uncoded should need the most laser power (column {i})"
                );
                assert!(
                    a >= b,
                    "H(71,64) should need at least as much as H(7,4) (column {i})"
                );
            }
        }
        // The last column (1e-12) is infeasible for the uncoded scheme only.
        assert!(uncoded.last().unwrap().is_none());
        assert!(h74.last().unwrap().is_some());
    }

    #[test]
    fn all_paper_schemes_sit_on_the_pareto_front() {
        let sweep = DesignSpace::paper_sweep();
        for &ber in &[1e-6, 1e-9, 1e-11] {
            let front = sweep.pareto_front(ber);
            assert!(!front.is_empty());
            for p in &front {
                assert!(
                    p.on_front,
                    "{} at {ber:.0e} should be Pareto-optimal",
                    p.point.scheme()
                );
            }
        }
    }

    #[test]
    fn dominated_points_are_detected() {
        // The code ablation contains schemes (e.g. Repetition3) that are
        // dominated by the Hamming codes: they burn more time without saving
        // enough power.
        let sweep = DesignSpace::code_ablation();
        let front = sweep.pareto_front(1e-9);
        let rep3 = front
            .iter()
            .find(|p| p.point.scheme() == EccScheme::Repetition3);
        if let Some(rep3) = rep3 {
            assert!(!rep3.on_front, "Rep3 should be dominated");
        }
        assert!(front.iter().any(|p| p.on_front));
    }

    #[test]
    fn evaluate_at_matches_feasible_points() {
        let sweep = DesignSpace::paper_sweep();
        assert_eq!(sweep.evaluate_at(1e-9).len(), 3);
        assert_eq!(sweep.evaluate_at(1e-12).len(), 2);
    }

    #[test]
    fn temperature_anchored_sweep_loses_the_uncoded_corner() {
        let ambient = DesignSpace::paper_sweep();
        let hot = DesignSpace::paper_sweep().at_temperature(Celsius::new(85.0));
        assert!(hot.temperature().is_some());
        // At 85 C the uncoded scheme disappears from every strict-BER column
        // and every surviving point carries a tuning-power term.
        let hot_points = hot.evaluate_at(1e-11);
        assert!(hot_points.iter().all(|p| p.scheme() != EccScheme::Uncoded));
        assert!(hot_points.iter().all(|p| p.power.tuning.value() > 0.0));
        assert_eq!(hot_points.len(), 2);
        // And the surviving schemes cost strictly more than at the ambient.
        for p in &hot_points {
            let cool = ambient
                .evaluate_at(1e-11)
                .into_iter()
                .find(|c| c.scheme() == p.scheme())
                .unwrap();
            assert!(p.channel_power.value() > cool.channel_power.value());
        }
    }

    #[test]
    #[should_panic(expected = "at least one scheme")]
    fn empty_scheme_list_panics() {
        let _ = DesignSpace::new(NanophotonicLink::paper_link(), vec![], vec![1e-9]);
    }

    #[test]
    fn accessors_expose_the_grid() {
        let sweep = DesignSpace::paper_sweep();
        assert_eq!(sweep.schemes().len(), 3);
        assert_eq!(sweep.ber_targets().len(), 10);
        assert_eq!(sweep.link().power_model().config().wavelength_lanes, 16);
    }
}
