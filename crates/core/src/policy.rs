//! The run-time optical-link energy/performance manager (Section III-C).
//!
//! The paper describes a centralized manager: a source ONI sends a request
//! naming the destination and the communication requirements; the manager
//! answers with the configuration to apply on both sides — the coding scheme
//! and the laser output power.  "The choice of the communication scheme is
//! handled by the Operating System": real-time traffic favours the fast
//! uncoded path, power-constrained multimedia traffic favours the coded,
//! lower-power path, possibly with a degraded BER.

use onoc_ecc_codes::EccScheme;
use onoc_units::Milliwatts;
use serde::{Deserialize, Serialize};

use crate::link::{LinkRequest, NanophotonicLink, OperatingPoint};

/// Coarse application classes distinguished by the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Hard-deadline traffic: communication time must not stretch.
    RealTime,
    /// Throughput traffic: moderate latency slack, strict BER.
    Bulk,
    /// Multimedia-like traffic: large latency slack, BER may be degraded to
    /// save power.
    Multimedia,
}

impl TrafficClass {
    /// Latency slack (maximum CT factor) granted to this class.
    #[must_use]
    pub fn max_communication_time_factor(self) -> f64 {
        match self {
            Self::RealTime => 1.0,
            Self::Bulk => 1.5,
            Self::Multimedia => 2.0,
        }
    }

    /// BER degradation factor tolerated by this class (multiplies the
    /// nominal target).
    #[must_use]
    pub fn ber_relaxation(self) -> f64 {
        match self {
            Self::RealTime | Self::Bulk => 1.0,
            Self::Multimedia => 100.0,
        }
    }
}

/// The configuration answered by the manager for one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManagerDecision {
    /// Traffic class the decision was made for.
    pub class: TrafficClass,
    /// Selected operating point (scheme + laser power + derived figures).
    pub point: OperatingPoint,
}

/// The centralized energy/performance manager.
#[derive(Debug, Clone)]
pub struct LinkManager {
    link: NanophotonicLink,
    candidates: Vec<EccScheme>,
    nominal_ber: f64,
    power_budget: Option<Milliwatts>,
}

impl LinkManager {
    /// Creates a manager over `link` with the given candidate schemes and the
    /// nominal BER target the platform guarantees.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or `nominal_ber` is outside (0, 0.5).
    #[must_use]
    pub fn new(link: NanophotonicLink, candidates: Vec<EccScheme>, nominal_ber: f64) -> Self {
        assert!(!candidates.is_empty(), "at least one candidate scheme is required");
        assert!(
            nominal_ber > 0.0 && nominal_ber < 0.5,
            "nominal BER must be in (0, 0.5)"
        );
        Self {
            link,
            candidates,
            nominal_ber,
            power_budget: None,
        }
    }

    /// The manager used by the paper's evaluation: the three paper schemes at
    /// a nominal BER of 10⁻¹¹.
    #[must_use]
    pub fn paper_manager() -> Self {
        Self::new(
            NanophotonicLink::paper_link(),
            EccScheme::paper_schemes().to_vec(),
            1e-11,
        )
    }

    /// Applies a per-waveguide power budget to every subsequent decision.
    #[must_use]
    pub fn with_power_budget(mut self, budget: Milliwatts) -> Self {
        self.power_budget = Some(budget);
        self
    }

    /// Nominal BER target.
    #[must_use]
    pub fn nominal_ber(&self) -> f64 {
        self.nominal_ber
    }

    /// Candidate schemes.
    #[must_use]
    pub fn candidates(&self) -> &[EccScheme] {
        &self.candidates
    }

    /// Configures the link for one request of the given traffic class.
    /// Returns `None` when no candidate satisfies the constraints.
    #[must_use]
    pub fn configure(&self, class: TrafficClass) -> Option<ManagerDecision> {
        let request = LinkRequest {
            target_ber: (self.nominal_ber * class.ber_relaxation()).min(0.499),
            max_communication_time_factor: Some(class.max_communication_time_factor()),
            max_channel_power: self.power_budget,
        };
        self.link
            .serve(&request, &self.candidates)
            .map(|point| ManagerDecision { class, point })
    }

    /// Configures the link for every class, reporting which classes are
    /// servable under the current budget.
    #[must_use]
    pub fn configure_all(&self) -> Vec<(TrafficClass, Option<ManagerDecision>)> {
        [TrafficClass::RealTime, TrafficClass::Bulk, TrafficClass::Multimedia]
            .into_iter()
            .map(|class| (class, self.configure(class)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_traffic_uses_the_uncoded_path() {
        let manager = LinkManager::paper_manager();
        let decision = manager.configure(TrafficClass::RealTime).unwrap();
        assert_eq!(decision.point.scheme(), EccScheme::Uncoded);
        assert!((decision.point.communication_time_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multimedia_traffic_uses_a_coded_low_power_path() {
        let manager = LinkManager::paper_manager();
        let rt = manager.configure(TrafficClass::RealTime).unwrap();
        let mm = manager.configure(TrafficClass::Multimedia).unwrap();
        assert_ne!(mm.point.scheme(), EccScheme::Uncoded);
        assert!(mm.point.channel_power.value() < rt.point.channel_power.value());
    }

    #[test]
    fn bulk_traffic_accepts_h7164_but_not_h74() {
        // CT cap of 1.5 excludes H(7,4) (1.75) but admits H(71,64) (1.11).
        let manager = LinkManager::paper_manager();
        let decision = manager.configure(TrafficClass::Bulk).unwrap();
        assert_eq!(decision.point.scheme(), EccScheme::Hamming7164);
    }

    #[test]
    fn tight_power_budget_rules_out_the_uncoded_path() {
        let manager = LinkManager::paper_manager().with_power_budget(Milliwatts::new(160.0));
        // Real-time traffic demands CT = 1.0, i.e. the uncoded path, but that
        // path blows the 160 mW budget: the request cannot be served.
        assert!(manager.configure(TrafficClass::RealTime).is_none());
        // Multimedia traffic still fits.
        assert!(manager.configure(TrafficClass::Multimedia).is_some());
    }

    #[test]
    fn configure_all_reports_every_class() {
        let manager = LinkManager::paper_manager();
        let all = manager.configure_all();
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|(_, d)| d.is_some()));
    }

    #[test]
    fn multimedia_ber_relaxation_lowers_the_laser_power_further() {
        let manager = LinkManager::paper_manager();
        let bulk = manager.configure(TrafficClass::Bulk).unwrap();
        let mm = manager.configure(TrafficClass::Multimedia).unwrap();
        assert!(
            mm.point.laser.laser_electrical_power.value()
                <= bulk.point.laser.laser_electrical_power.value() + 1e-9
        );
    }

    #[test]
    fn accessors() {
        let manager = LinkManager::paper_manager();
        assert_eq!(manager.candidates().len(), 3);
        assert!((manager.nominal_ber() - 1e-11).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let _ = LinkManager::new(NanophotonicLink::paper_link(), vec![], 1e-9);
    }
}
