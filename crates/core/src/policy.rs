//! The run-time optical-link energy/performance manager (Section III-C).
//!
//! The paper describes a centralized manager: a source ONI sends a request
//! naming the destination and the communication requirements; the manager
//! answers with the configuration to apply on both sides — the coding scheme
//! and the laser output power.  "The choice of the communication scheme is
//! handled by the Operating System": real-time traffic favours the fast
//! uncoded path, power-constrained multimedia traffic favours the coded,
//! lower-power path, possibly with a degraded BER.

use onoc_ecc_codes::EccScheme;
use onoc_thermal::ThermalEnvironment;
use onoc_units::{Celsius, Milliwatts};
use serde::{Deserialize, Serialize};

use crate::link::{LinkRequest, NanophotonicLink, OperatingPoint, SelectionObjective};

/// Coarse application classes distinguished by the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Hard-deadline traffic: communication time must not stretch.
    RealTime,
    /// Latency-sensitive traffic that prefers the fastest feasible path but
    /// accepts a moderately coded fallback when the fast path is infeasible
    /// (e.g. when temperature kills the uncoded link).
    LatencyFirst,
    /// Throughput traffic: moderate latency slack, strict BER.
    Bulk,
    /// Multimedia-like traffic: large latency slack, BER may be degraded to
    /// save power.
    Multimedia,
}

impl TrafficClass {
    /// Every class, in decreasing latency sensitivity.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [
            Self::RealTime,
            Self::LatencyFirst,
            Self::Bulk,
            Self::Multimedia,
        ]
    }

    /// Latency slack (maximum CT factor) granted to this class.
    #[must_use]
    pub fn max_communication_time_factor(self) -> f64 {
        match self {
            Self::RealTime => 1.0,
            Self::LatencyFirst | Self::Bulk => 1.5,
            Self::Multimedia => 2.0,
        }
    }

    /// BER degradation factor tolerated by this class (multiplies the
    /// nominal target).
    #[must_use]
    pub fn ber_relaxation(self) -> f64 {
        match self {
            Self::RealTime | Self::LatencyFirst | Self::Bulk => 1.0,
            Self::Multimedia => 100.0,
        }
    }

    /// What the manager optimises for within this class's constraints.
    #[must_use]
    pub fn objective(self) -> SelectionObjective {
        match self {
            Self::LatencyFirst => SelectionObjective::MinLatency,
            Self::RealTime | Self::Bulk | Self::Multimedia => SelectionObjective::MinPower,
        }
    }

    /// Stable name used in telemetry events and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::RealTime => "RealTime",
            Self::LatencyFirst => "LatencyFirst",
            Self::Bulk => "Bulk",
            Self::Multimedia => "Multimedia",
        }
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The configuration answered by the manager for one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManagerDecision {
    /// Traffic class the decision was made for.
    pub class: TrafficClass,
    /// Selected operating point (scheme + laser power + derived figures).
    pub point: OperatingPoint,
}

/// The centralized energy/performance manager.
#[derive(Debug, Clone)]
pub struct LinkManager {
    link: NanophotonicLink,
    candidates: Vec<EccScheme>,
    nominal_ber: f64,
    power_budget: Option<Milliwatts>,
}

impl LinkManager {
    /// Creates a manager over `link` with the given candidate schemes and the
    /// nominal BER target the platform guarantees.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or `nominal_ber` is outside (0, 0.5).
    #[must_use]
    pub fn new(link: NanophotonicLink, candidates: Vec<EccScheme>, nominal_ber: f64) -> Self {
        assert!(
            !candidates.is_empty(),
            "at least one candidate scheme is required"
        );
        assert!(
            nominal_ber > 0.0 && nominal_ber < 0.5,
            "nominal BER must be in (0, 0.5)"
        );
        Self {
            link,
            candidates,
            nominal_ber,
            power_budget: None,
        }
    }

    /// The manager used by the paper's evaluation: the three paper schemes at
    /// a nominal BER of 10⁻¹¹.
    #[must_use]
    pub fn paper_manager() -> Self {
        Self::new(
            NanophotonicLink::paper_link(),
            EccScheme::paper_schemes().to_vec(),
            1e-11,
        )
    }

    /// Applies a per-waveguide power budget to every subsequent decision.
    #[must_use]
    pub fn with_power_budget(mut self, budget: Milliwatts) -> Self {
        self.power_budget = Some(budget);
        self
    }

    /// Points this manager's link at a shared operating-point cache — the
    /// scale-out configuration where a fleet of managers over identical
    /// stacks solves each `(scheme, BER, temperature bucket)` point once.
    /// See [`NanophotonicLink::with_shared_cache`].
    #[must_use]
    pub fn with_shared_cache(mut self, cache: crate::cache::SharedOpCache) -> Self {
        self.link = self.link.with_shared_cache(cache);
        self
    }

    /// Nominal BER target.
    #[must_use]
    pub fn nominal_ber(&self) -> f64 {
        self.nominal_ber
    }

    /// Candidate schemes.
    #[must_use]
    pub fn candidates(&self) -> &[EccScheme] {
        &self.candidates
    }

    /// The underlying link (exposes the memoized operating-point cache and
    /// its hit/miss counters).
    #[must_use]
    pub fn link(&self) -> &NanophotonicLink {
        &self.link
    }

    /// Configures the link for one request of the given traffic class, at
    /// the link's calibration ambient temperature.  Returns `None` when no
    /// candidate satisfies the constraints.
    #[must_use]
    pub fn configure(&self, class: TrafficClass) -> Option<ManagerDecision> {
        self.serve(class, None)
    }

    /// Configures the link for one request of the given traffic class with
    /// the chip at `temperature`.  As the chip heats, the same class can
    /// legitimately land on a different scheme: a [`TrafficClass::LatencyFirst`]
    /// request rides the uncoded path at 25 °C and falls back to
    /// Hamming(71,64) once drift makes the uncoded path infeasible.
    #[must_use]
    pub fn configure_at(
        &self,
        class: TrafficClass,
        temperature: Celsius,
    ) -> Option<ManagerDecision> {
        self.serve(class, Some(temperature))
    }

    fn serve(&self, class: TrafficClass, temperature: Option<Celsius>) -> Option<ManagerDecision> {
        let request = LinkRequest {
            target_ber: (self.nominal_ber * class.ber_relaxation()).min(0.499),
            max_communication_time_factor: Some(class.max_communication_time_factor()),
            max_channel_power: self.power_budget,
            temperature,
            objective: class.objective(),
        };
        let decision = self
            .link
            .serve(&request, &self.candidates)
            .map(|point| ManagerDecision { class, point });
        self.link
            .telemetry()
            .emit(|| onoc_telemetry::TelemetryEvent::DecisionResolved {
                class: class.name().to_owned(),
                temperature_c: temperature.unwrap_or_else(|| self.link.ambient()).value(),
                scheme: decision.as_ref().map(|d| d.point.scheme().to_string()),
            });
        decision
    }

    /// Configures the link for every class, reporting which classes are
    /// servable under the current budget.
    #[must_use]
    pub fn configure_all(&self) -> Vec<(TrafficClass, Option<ManagerDecision>)> {
        TrafficClass::all()
            .into_iter()
            .map(|class| (class, self.configure(class)))
            .collect()
    }

    /// Configures the link for every class at `temperature`.
    #[must_use]
    pub fn configure_all_at(
        &self,
        temperature: Celsius,
    ) -> Vec<(TrafficClass, Option<ManagerDecision>)> {
        TrafficClass::all()
            .into_iter()
            .map(|class| (class, self.configure_at(class, temperature)))
            .collect()
    }
}

/// The thermally-adaptive runtime manager: a [`LinkManager`] bound to a
/// [`ThermalEnvironment`], answering per-ONI, per-instant configuration
/// requests.
///
/// This is the Section III-C manager upgraded for a chip whose temperature
/// is neither uniform nor constant: the scheme and laser power it hands out
/// depend on *where* (which destination ONI's channel) and *when* (transient
/// traces) the communication happens.
#[derive(Debug, Clone)]
pub struct ThermalRuntimeManager {
    manager: LinkManager,
    environment: ThermalEnvironment,
    oni_count: usize,
}

impl ThermalRuntimeManager {
    /// Binds `manager` to `environment` over `oni_count` ONIs.
    ///
    /// # Panics
    ///
    /// Panics if `oni_count` is zero.
    #[must_use]
    pub fn new(manager: LinkManager, environment: ThermalEnvironment, oni_count: usize) -> Self {
        assert!(oni_count > 0, "at least one ONI is required");
        Self {
            manager,
            environment,
            oni_count,
        }
    }

    /// The underlying link manager.
    #[must_use]
    pub fn manager(&self) -> &LinkManager {
        &self.manager
    }

    /// The thermal environment being tracked.
    #[must_use]
    pub fn environment(&self) -> &ThermalEnvironment {
        &self.environment
    }

    /// Temperature of the channel read by `oni` at `time_ns`.
    #[must_use]
    pub fn temperature_at(&self, oni: usize, time_ns: f64) -> Celsius {
        self.environment
            .temperature_at(oni, self.oni_count, time_ns)
    }

    /// Configures a transfer of `class` towards destination `oni` at
    /// `time_ns`.
    #[must_use]
    pub fn configure(
        &self,
        class: TrafficClass,
        oni: usize,
        time_ns: f64,
    ) -> Option<ManagerDecision> {
        self.manager
            .configure_at(class, self.temperature_at(oni, time_ns))
    }

    /// The per-ONI scheme map of `class` at `time_ns`: what every
    /// destination channel would be configured to.
    #[must_use]
    pub fn scheme_map(
        &self,
        class: TrafficClass,
        time_ns: f64,
    ) -> Vec<(usize, Celsius, Option<ManagerDecision>)> {
        (0..self.oni_count)
            .map(|oni| {
                let t = self.temperature_at(oni, time_ns);
                (oni, t, self.manager.configure_at(class, t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_traffic_uses_the_uncoded_path() {
        let manager = LinkManager::paper_manager();
        let decision = manager.configure(TrafficClass::RealTime).unwrap();
        assert_eq!(decision.point.scheme(), EccScheme::Uncoded);
        assert!((decision.point.communication_time_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multimedia_traffic_uses_a_coded_low_power_path() {
        let manager = LinkManager::paper_manager();
        let rt = manager.configure(TrafficClass::RealTime).unwrap();
        let mm = manager.configure(TrafficClass::Multimedia).unwrap();
        assert_ne!(mm.point.scheme(), EccScheme::Uncoded);
        assert!(mm.point.channel_power.value() < rt.point.channel_power.value());
    }

    #[test]
    fn bulk_traffic_accepts_h7164_but_not_h74() {
        // CT cap of 1.5 excludes H(7,4) (1.75) but admits H(71,64) (1.11).
        let manager = LinkManager::paper_manager();
        let decision = manager.configure(TrafficClass::Bulk).unwrap();
        assert_eq!(decision.point.scheme(), EccScheme::Hamming7164);
    }

    #[test]
    fn tight_power_budget_rules_out_the_uncoded_path() {
        let manager = LinkManager::paper_manager().with_power_budget(Milliwatts::new(160.0));
        // Real-time traffic demands CT = 1.0, i.e. the uncoded path, but that
        // path blows the 160 mW budget: the request cannot be served.
        assert!(manager.configure(TrafficClass::RealTime).is_none());
        // Multimedia traffic still fits.
        assert!(manager.configure(TrafficClass::Multimedia).is_some());
    }

    #[test]
    fn configure_all_reports_every_class() {
        let manager = LinkManager::paper_manager();
        let all = manager.configure_all();
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|(_, d)| d.is_some()));
    }

    #[test]
    fn latency_first_rides_uncoded_when_cool() {
        let manager = LinkManager::paper_manager();
        let decision = manager.configure(TrafficClass::LatencyFirst).unwrap();
        assert_eq!(decision.point.scheme(), EccScheme::Uncoded);
    }

    #[test]
    fn latency_first_switches_to_hamming_when_hot() {
        // The thermally-adaptive behaviour the thermal subsystem exists for:
        // at 25 C the fastest feasible path is uncoded; at 85 C residual ring
        // drift kills the uncoded link and the manager falls back to the next
        // fastest feasible scheme, H(71,64).
        let manager = LinkManager::paper_manager();
        let cool = manager
            .configure_at(TrafficClass::LatencyFirst, Celsius::new(25.0))
            .unwrap();
        assert_eq!(cool.point.scheme(), EccScheme::Uncoded);
        let hot = manager
            .configure_at(TrafficClass::LatencyFirst, Celsius::new(85.0))
            .unwrap();
        assert_eq!(hot.point.scheme(), EccScheme::Hamming7164);
        assert!(hot.point.power.tuning.value() > 0.0);
        // Hard real-time traffic cannot switch (CT = 1.0 admits only the
        // uncoded path) and becomes unservable instead.
        assert!(manager
            .configure_at(TrafficClass::RealTime, Celsius::new(85.0))
            .is_none());
    }

    #[test]
    fn configure_at_ambient_matches_configure() {
        let manager = LinkManager::paper_manager();
        for class in TrafficClass::all() {
            let a = manager.configure(class);
            let b = manager.configure_at(class, Celsius::new(25.0));
            assert_eq!(a, b, "{class:?}");
        }
    }

    #[test]
    fn thermal_runtime_manager_tracks_a_hotspot_per_oni() {
        let runtime = ThermalRuntimeManager::new(
            LinkManager::paper_manager(),
            ThermalEnvironment::Hotspot {
                base: Celsius::new(30.0),
                peak: Celsius::new(85.0),
                center: 0,
                decay_per_hop: 0.35,
            },
            12,
        );
        let map = runtime.scheme_map(TrafficClass::LatencyFirst, 0.0);
        assert_eq!(map.len(), 12);
        // The hotspot channel is forced onto the coded path…
        let (_, t0, hot) = &map[0];
        assert!((t0.value() - 85.0).abs() < 1e-9);
        assert_eq!(hot.as_ref().unwrap().point.scheme(), EccScheme::Hamming7164);
        // …while channels far from the hotspot still ride uncoded.
        let (_, t6, far) = &map[6];
        assert!(t6.value() < 32.0);
        assert_eq!(far.as_ref().unwrap().point.scheme(), EccScheme::Uncoded);
        assert!(runtime.environment() == &runtime.environment().clone());
        assert_eq!(runtime.manager().candidates().len(), 3);
    }

    #[test]
    fn multimedia_ber_relaxation_lowers_the_laser_power_further() {
        let manager = LinkManager::paper_manager();
        let bulk = manager.configure(TrafficClass::Bulk).unwrap();
        let mm = manager.configure(TrafficClass::Multimedia).unwrap();
        assert!(
            mm.point.laser.laser_electrical_power.value()
                <= bulk.point.laser.laser_electrical_power.value() + 1e-9
        );
    }

    #[test]
    fn accessors() {
        let manager = LinkManager::paper_manager();
        assert_eq!(manager.candidates().len(), 3);
        assert!((manager.nominal_ber() - 1e-11).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let _ = LinkManager::new(NanophotonicLink::paper_link(), vec![], 1e-9);
    }
}
