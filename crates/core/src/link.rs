//! The configured nanophotonic link and its operating points.

use onoc_ecc_codes::EccScheme;
use onoc_interface::{ChannelPowerBreakdown, ChannelPowerModel, CommunicationTiming, EnergyAccounting, InterfaceConfig};
use onoc_photonics::power::{LaserOperatingPoint, LaserPowerSolver, SolveError};
use onoc_photonics::{MwsrChannel, PaperCalibration};
use onoc_units::{Milliwatts, PicojoulesPerBit};
use serde::{Deserialize, Serialize};

/// Errors returned by link-level queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkError {
    /// The photonic solver found no feasible laser operating point.
    Infeasible(SolveError),
    /// The interface cannot sustain the requested scheme at line rate.
    SchemeNotSustainable {
        /// The offending scheme.
        scheme: EccScheme,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Infeasible(e) => write!(f, "no feasible operating point: {e}"),
            Self::SchemeNotSustainable { scheme } => write!(
                f,
                "the optical channel cannot sustain {scheme} at the IP word rate"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<SolveError> for LinkError {
    fn from(value: SolveError) -> Self {
        Self::Infeasible(value)
    }
}

/// A request against the link manager: what the communication needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkRequest {
    /// Required decoded bit-error rate.
    pub target_ber: f64,
    /// Maximum acceptable communication-time factor (1.0 = no slack over an
    /// uncoded transfer); `None` means latency does not matter.
    pub max_communication_time_factor: Option<f64>,
    /// Maximum acceptable per-waveguide channel power; `None` means no cap.
    pub max_channel_power: Option<Milliwatts>,
}

impl LinkRequest {
    /// A latency-insensitive request at the given BER.
    #[must_use]
    pub fn best_effort(target_ber: f64) -> Self {
        Self {
            target_ber,
            max_communication_time_factor: None,
            max_channel_power: None,
        }
    }
}

/// A fully-evaluated operating point of the link for one (scheme, BER) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The laser-side solution (OP_laser, P_laser, SNR, crosstalk…).
    pub laser: LaserOperatingPoint,
    /// Per-wavelength power breakdown (Fig. 6a bars).
    pub power: ChannelPowerBreakdown,
    /// Channel power for the full set of wavelength lanes.
    pub channel_power: Milliwatts,
    /// Timing of one word transfer.
    pub timing: CommunicationTiming,
    /// Energy per payload bit under the primary accounting.
    pub energy_per_bit: PicojoulesPerBit,
}

impl OperatingPoint {
    /// Coding scheme of this point.
    #[must_use]
    pub fn scheme(&self) -> EccScheme {
        self.laser.scheme
    }

    /// Target BER of this point.
    #[must_use]
    pub fn target_ber(&self) -> f64 {
        self.laser.target_ber
    }

    /// Communication-time factor (CT).
    #[must_use]
    pub fn communication_time_factor(&self) -> f64 {
        self.timing.communication_time_factor
    }
}

/// A nanophotonic MWSR link with ECC-capable interfaces and a tunable laser.
///
/// This is the object the rest of the workspace (examples, benches, the NoC
/// simulator) interacts with.
#[derive(Debug, Clone)]
pub struct NanophotonicLink {
    solver: LaserPowerSolver,
    power_model: ChannelPowerModel,
    accounting: EnergyAccounting,
}

impl NanophotonicLink {
    /// Builds a link from a photonic calibration and an interface
    /// configuration.
    #[must_use]
    pub fn new(calibration: PaperCalibration, interface: InterfaceConfig) -> Self {
        let modulation_power = calibration.modulation_power;
        let channel = calibration.into_channel();
        Self {
            solver: LaserPowerSolver::new(channel),
            power_model: ChannelPowerModel::new(interface, modulation_power),
            accounting: EnergyAccounting::ActiveTransfersOnly,
        }
    }

    /// The link evaluated in the paper: 12 ONIs, 16 wavelengths, 6 cm
    /// waveguide, 64-bit IP bus at 1 GHz, 10 Gb/s modulation.
    #[must_use]
    pub fn paper_link() -> Self {
        Self::new(PaperCalibration::dac17(), InterfaceConfig::paper_default())
    }

    /// Selects the energy accounting used for `energy_per_bit`.
    #[must_use]
    pub fn with_energy_accounting(mut self, accounting: EnergyAccounting) -> Self {
        self.accounting = accounting;
        self
    }

    /// The underlying MWSR channel model.
    #[must_use]
    pub fn channel(&self) -> &MwsrChannel {
        self.solver.channel()
    }

    /// The interface/power model.
    #[must_use]
    pub fn power_model(&self) -> &ChannelPowerModel {
        &self.power_model
    }

    /// The laser power solver.
    #[must_use]
    pub fn solver(&self) -> &LaserPowerSolver {
        &self.solver
    }

    /// Evaluates the complete operating point of `scheme` at `target_ber`.
    ///
    /// # Errors
    ///
    /// * [`LinkError::SchemeNotSustainable`] when the optical channel cannot
    ///   carry the encoded word within one IP cycle;
    /// * [`LinkError::Infeasible`] when the laser cannot reach the required
    ///   optical power (e.g. uncoded at BER = 10⁻¹²).
    pub fn operating_point(
        &self,
        scheme: EccScheme,
        target_ber: f64,
    ) -> Result<OperatingPoint, LinkError> {
        if !self.power_model.config().supports(scheme) {
            return Err(LinkError::SchemeNotSustainable { scheme });
        }
        let laser = self.solver.solve(scheme, target_ber)?;
        let power = self
            .power_model
            .breakdown(scheme, laser.laser_electrical_power);
        let lanes = self.power_model.config().wavelength_lanes;
        let timing = self.power_model.timing(scheme);
        let energy_per_bit = self.power_model.energy_per_bit(&power, self.accounting);
        Ok(OperatingPoint {
            laser,
            power,
            channel_power: power.channel_total(lanes),
            timing,
            energy_per_bit,
        })
    }

    /// Evaluates every scheme in `candidates` at `target_ber`, silently
    /// dropping infeasible ones.
    #[must_use]
    pub fn feasible_points(
        &self,
        candidates: &[EccScheme],
        target_ber: f64,
    ) -> Vec<OperatingPoint> {
        candidates
            .iter()
            .filter_map(|&scheme| self.operating_point(scheme, target_ber).ok())
            .collect()
    }

    /// Serves a [`LinkRequest`]: among all feasible schemes, returns the one
    /// with the lowest channel power that satisfies the request constraints,
    /// or `None` when no scheme qualifies.
    #[must_use]
    pub fn serve(&self, request: &LinkRequest, candidates: &[EccScheme]) -> Option<OperatingPoint> {
        self.feasible_points(candidates, request.target_ber)
            .into_iter()
            .filter(|p| {
                request
                    .max_communication_time_factor
                    .map_or(true, |ct| p.communication_time_factor() <= ct + 1e-12)
            })
            .filter(|p| {
                request
                    .max_channel_power
                    .map_or(true, |cap| p.channel_power.value() <= cap.value() + 1e-12)
            })
            .min_by(|a, b| {
                a.channel_power
                    .value()
                    .partial_cmp(&b.channel_power.value())
                    .expect("powers are finite")
            })
    }
}

impl Default for NanophotonicLink {
    fn default() -> Self {
        Self::paper_link()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> NanophotonicLink {
        NanophotonicLink::paper_link()
    }

    #[test]
    fn paper_headline_laser_power_reduction() {
        let l = link();
        let uncoded = l.operating_point(EccScheme::Uncoded, 1e-11).unwrap();
        let h74 = l.operating_point(EccScheme::Hamming74, 1e-11).unwrap();
        let h7164 = l.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();
        // Roughly −45% / −49% channel power as in Fig. 6a.
        let saving74 = 1.0 - h74.channel_power.value() / uncoded.channel_power.value();
        let saving7164 = 1.0 - h7164.channel_power.value() / uncoded.channel_power.value();
        assert!(saving74 > 0.40 && saving74 < 0.60, "H(7,4) saving = {saving74}");
        assert!(saving7164 > 0.35 && saving7164 < 0.55, "H(71,64) saving = {saving7164}");
    }

    #[test]
    fn unreachable_ber_without_coding() {
        let l = link();
        assert!(matches!(
            l.operating_point(EccScheme::Uncoded, 1e-12),
            Err(LinkError::Infeasible(_))
        ));
        assert!(l.operating_point(EccScheme::Hamming74, 1e-12).is_ok());
        assert!(l.operating_point(EccScheme::Hamming7164, 1e-12).is_ok());
    }

    #[test]
    fn operating_point_is_internally_consistent() {
        let l = link();
        let p = l.operating_point(EccScheme::Hamming7164, 1e-9).unwrap();
        assert_eq!(p.scheme(), EccScheme::Hamming7164);
        assert!((p.target_ber() - 1e-9).abs() < 1e-20);
        assert!((p.channel_power.value() - p.power.channel_total(16).value()).abs() < 1e-9);
        assert!((p.communication_time_factor() - 71.0 / 64.0).abs() < 1e-9);
        assert!(p.energy_per_bit.value() > 0.5 && p.energy_per_bit.value() < 10.0);
    }

    #[test]
    fn feasible_points_drop_infeasible_schemes() {
        let l = link();
        let points = l.feasible_points(&EccScheme::paper_schemes(), 1e-12);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.scheme() != EccScheme::Uncoded));
    }

    #[test]
    fn serve_picks_the_lowest_power_scheme_within_constraints() {
        let l = link();
        // Latency-insensitive: a Hamming code wins on power.
        let relaxed = l
            .serve(&LinkRequest::best_effort(1e-11), &EccScheme::paper_schemes())
            .unwrap();
        assert_ne!(relaxed.scheme(), EccScheme::Uncoded);

        // Tight deadline (CT ≤ 1.0): only the uncoded path qualifies.
        let tight = l
            .serve(
                &LinkRequest {
                    target_ber: 1e-11,
                    max_communication_time_factor: Some(1.0),
                    max_channel_power: None,
                },
                &EccScheme::paper_schemes(),
            )
            .unwrap();
        assert_eq!(tight.scheme(), EccScheme::Uncoded);

        // Impossible combination: BER 1e-12 with CT ≤ 1.0.
        assert!(l
            .serve(
                &LinkRequest {
                    target_ber: 1e-12,
                    max_communication_time_factor: Some(1.0),
                    max_channel_power: None,
                },
                &EccScheme::paper_schemes(),
            )
            .is_none());
    }

    #[test]
    fn power_cap_filters_operating_points() {
        let l = link();
        let capped = l.serve(
            &LinkRequest {
                target_ber: 1e-11,
                max_communication_time_factor: None,
                max_channel_power: Some(Milliwatts::new(150.0)),
            },
            &EccScheme::paper_schemes(),
        );
        let uncapped = l
            .serve(&LinkRequest::best_effort(1e-11), &EccScheme::paper_schemes())
            .unwrap();
        assert!(capped.is_some());
        assert!(capped.unwrap().channel_power.value() <= 150.0);
        assert!(uncapped.channel_power.value() <= 150.0);
    }

    #[test]
    fn scheme_not_sustainable_on_a_narrow_interface() {
        let mut interface = InterfaceConfig::paper_default();
        interface.wavelength_lanes = 8; // 80 Gb/s: too narrow for H(7,4)'s 112 bits/cycle.
        let l = NanophotonicLink::new(PaperCalibration::dac17(), interface);
        assert!(matches!(
            l.operating_point(EccScheme::Hamming74, 1e-9),
            Err(LinkError::SchemeNotSustainable { .. })
        ));
        assert!(l.operating_point(EccScheme::Hamming7164, 1e-9).is_ok());
    }

    #[test]
    fn error_display() {
        let l = link();
        let err = l.operating_point(EccScheme::Uncoded, 1e-12).unwrap_err();
        assert!(err.to_string().contains("no feasible operating point"));
    }
}
