//! The configured nanophotonic link and its operating points.

use onoc_ecc_codes::EccScheme;
use onoc_interface::{
    ChannelPowerBreakdown, ChannelPowerModel, CommunicationTiming, EnergyAccounting,
    InterfaceConfig,
};
use onoc_photonics::power::{LaserOperatingPoint, LaserPowerSolver, SolveError};
use onoc_photonics::thermal::{ThermalLinkStack, ThermalSolver, ThermalSummary};
use onoc_photonics::{MwsrChannel, PaperCalibration};
use onoc_telemetry::{RecorderHandle, TelemetryEvent};
use onoc_thermal::{
    AssignmentStrategy, BankTuningMode, FabricationVariation, RingBankState, WavelengthAssigner,
    WavelengthAssignment,
};
use onoc_units::{Celsius, Milliwatts, PicojoulesPerBit};
use serde::{Deserialize, Serialize};

use crate::cache::{OpCacheKey, SharedOpCache};

/// Errors returned by link-level queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkError {
    /// The photonic solver found no feasible laser operating point.
    Infeasible(SolveError),
    /// The interface cannot sustain the requested scheme at line rate.
    SchemeNotSustainable {
        /// The offending scheme.
        scheme: EccScheme,
    },
    /// A link-level knob was set to a structurally invalid value.
    InvalidConfiguration {
        /// Description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Infeasible(e) => write!(f, "no feasible operating point: {e}"),
            Self::SchemeNotSustainable { scheme } => write!(
                f,
                "the optical channel cannot sustain {scheme} at the IP word rate"
            ),
            Self::InvalidConfiguration { reason } => {
                write!(f, "invalid link configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

impl From<SolveError> for LinkError {
    fn from(value: SolveError) -> Self {
        Self::Infeasible(value)
    }
}

/// What the manager optimises for among the feasible operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SelectionObjective {
    /// Lowest total channel power (the paper's default).
    #[default]
    MinPower,
    /// Lowest communication-time factor, ties broken by power.  This is what
    /// makes a latency-sensitive class *switch* from the uncoded path to a
    /// Hamming code when temperature renders the uncoded path infeasible.
    MinLatency,
}

/// A request against the link manager: what the communication needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkRequest {
    /// Required decoded bit-error rate.
    pub target_ber: f64,
    /// Maximum acceptable communication-time factor (1.0 = no slack over an
    /// uncoded transfer); `None` means latency does not matter.
    pub max_communication_time_factor: Option<f64>,
    /// Maximum acceptable per-waveguide channel power; `None` means no cap.
    pub max_channel_power: Option<Milliwatts>,
    /// Chip temperature to serve the request at; `None` means the link's
    /// calibration ambient (the paper's 25 °C).
    pub temperature: Option<Celsius>,
    /// Selection objective among the feasible points.
    pub objective: SelectionObjective,
}

impl LinkRequest {
    /// A latency-insensitive request at the given BER, at the calibration
    /// ambient.
    #[must_use]
    pub fn best_effort(target_ber: f64) -> Self {
        Self {
            target_ber,
            max_communication_time_factor: None,
            max_channel_power: None,
            temperature: None,
            objective: SelectionObjective::MinPower,
        }
    }

    /// The same request served at `temperature`.
    #[must_use]
    pub fn at_temperature(mut self, temperature: Celsius) -> Self {
        self.temperature = Some(temperature);
        self
    }
}

/// A fully-evaluated operating point of the link for one (scheme, BER,
/// temperature) triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The laser-side solution (OP_laser, P_laser, SNR, crosstalk…).
    pub laser: LaserOperatingPoint,
    /// Per-wavelength power breakdown (Fig. 6a bars, plus P_tune).
    pub power: ChannelPowerBreakdown,
    /// Channel power for the full set of wavelength lanes.
    pub channel_power: Milliwatts,
    /// Timing of one word transfer.
    pub timing: CommunicationTiming,
    /// Energy per payload bit under the primary accounting.
    pub energy_per_bit: PicojoulesPerBit,
    /// Thermal side of the point: temperature, drift and tuning power.
    pub thermal: ThermalSummary,
}

impl OperatingPoint {
    /// Coding scheme of this point.
    #[must_use]
    pub fn scheme(&self) -> EccScheme {
        self.laser.scheme
    }

    /// Target BER of this point.
    #[must_use]
    pub fn target_ber(&self) -> f64 {
        self.laser.target_ber
    }

    /// Communication-time factor (CT).
    #[must_use]
    pub fn communication_time_factor(&self) -> f64 {
        self.timing.communication_time_factor
    }

    /// Chip temperature this point was solved at.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.thermal.temperature
    }
}

/// Snapshot of the memoized operating-point cache's effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that invoked the full photonic solver.
    pub misses: u64,
    /// Distinct `(scheme, BER, temperature bucket)` entries held.
    pub entries: usize,
}

impl CacheCounters {
    /// Total memoized queries.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of queries answered without invoking the solver.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Accumulates another counter snapshot into this one — the fleet
    /// aggregation used by `RunReport`.  Summing `entries` over-counts when
    /// the snapshots come from handles sharing one cache; aggregate shared
    /// fleets through the cache handle's own counters instead.
    pub fn merge(&mut self, other: CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries += other.entries;
    }
}

impl std::fmt::Display for CacheCounters {
    /// Renders e.g. `96.3% hit rate (1234 hits / 47 misses, 47 entries)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% hit rate ({} hits / {} misses, {} entries)",
            100.0 * self.hit_rate(),
            self.hits,
            self.misses,
            self.entries
        )
    }
}

/// A nanophotonic MWSR link with ECC-capable interfaces and a tunable laser.
///
/// This is the object the rest of the workspace (examples, benches, the NoC
/// simulator) interacts with.
///
/// Memoized queries go through a [`SharedOpCache`]: by default each link
/// starts with its own private cache, but a fleet of identical links can be
/// pointed at one shared cache via
/// [`NanophotonicLink::with_shared_cache`] so the `(scheme, BER bits,
/// temperature bucket, stack fingerprint)` key space is solved once
/// fleet-wide.  **Cloning a link shares its cache handle** (entries and
/// counters); use [`NanophotonicLink::clone_with_fresh_cache`] for an
/// isolated clone with an empty cache of the same resolution.
#[derive(Debug, Clone)]
pub struct NanophotonicLink {
    solver: ThermalSolver,
    power_model: ChannelPowerModel,
    accounting: EnergyAccounting,
    ambient: Celsius,
    cache: SharedOpCache,
    /// Memoized [`ThermalLinkStack::fingerprint`] of the active stack, part
    /// of every cache key.
    stack_fingerprint: u64,
    /// Telemetry sink for solver invocations and cache hits/misses.
    /// Disabled by default; see [`NanophotonicLink::with_telemetry`].
    telemetry: RecorderHandle,
}

impl NanophotonicLink {
    /// Builds a link from a photonic calibration and an interface
    /// configuration, with the default thermal stack (silicon ring drift,
    /// paper heater, adaptive tune-vs-tolerate policy).  The ring bank is
    /// assumed aligned to the grid at the calibration's ambient, so the
    /// stack's drift model is re-anchored there: at that temperature the
    /// thermal machinery is a no-op whatever ambient the calibration uses.
    #[must_use]
    pub fn new(calibration: PaperCalibration, interface: InterfaceConfig) -> Self {
        let modulation_power = calibration.modulation_power;
        let ambient = calibration.ambient;
        let channel = calibration.into_channel();
        let mut stack = ThermalLinkStack::paper_default();
        stack.rings.calibration = ambient;
        Self {
            stack_fingerprint: stack.fingerprint(),
            solver: ThermalSolver::new(channel, stack),
            power_model: ChannelPowerModel::new(interface, modulation_power),
            accounting: EnergyAccounting::ActiveTransfersOnly,
            ambient,
            cache: SharedOpCache::new(),
            telemetry: RecorderHandle::none(),
        }
    }

    /// The link evaluated in the paper: 12 ONIs, 16 wavelengths, 6 cm
    /// waveguide, 64-bit IP bus at 1 GHz, 10 Gb/s modulation.
    #[must_use]
    pub fn paper_link() -> Self {
        Self::new(PaperCalibration::dac17(), InterfaceConfig::paper_default())
    }

    /// Selects the energy accounting used for `energy_per_bit`.
    #[must_use]
    pub fn with_energy_accounting(mut self, accounting: EnergyAccounting) -> Self {
        self.accounting = accounting;
        self
    }

    /// Attaches a telemetry sink: every solver invocation emits
    /// [`TelemetryEvent::SolverInvoked`] and every memoized query emits
    /// [`TelemetryEvent::CacheHit`] or [`TelemetryEvent::CacheMiss`].  The
    /// default handle is disabled and costs nothing.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: RecorderHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry sink in place (used when wiring an existing
    /// fleet member).
    pub fn set_telemetry(&mut self, telemetry: RecorderHandle) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry sink (disabled by default).
    #[must_use]
    pub fn telemetry(&self) -> &RecorderHandle {
        &self.telemetry
    }

    /// Sets the temperature resolution of the memoized operating-point
    /// cache, in buckets per kelvin (default 20, i.e. 0.05 K buckets).  The
    /// link detaches from any shared cache: it gets a fresh (empty) private
    /// [`SharedOpCache`] at the new resolution.
    ///
    /// # Errors
    ///
    /// [`LinkError::InvalidConfiguration`] when `buckets_per_kelvin` is
    /// zero, negative or not finite — a non-positive resolution would snap
    /// every temperature onto one bucket (or divide by zero), silently
    /// serving one operating point for the whole sweep.
    pub fn with_cache_resolution(mut self, buckets_per_kelvin: f64) -> Result<Self, LinkError> {
        self.cache = SharedOpCache::with_resolution(buckets_per_kelvin)?;
        Ok(self)
    }

    /// Points this link at `cache`: its memoized queries are answered from
    /// (and fill) the shared storage, and its hit/miss traffic lands on the
    /// shared counters.  Many links sharing one cache is the scale-out
    /// configuration for homogeneous fleets — the key carries the stack
    /// fingerprint, so heterogeneous links can share a map without aliasing,
    /// but only identical stacks actually reuse each other's entries.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: SharedOpCache) -> Self {
        self.cache = cache;
        self
    }

    /// The cache handle this link currently resolves memoized queries
    /// through.  Clone it to share the cache with other links or to inspect
    /// counters fleet-wide.
    #[must_use]
    pub fn shared_cache(&self) -> SharedOpCache {
        self.cache.clone()
    }

    /// A clone with a fresh (empty, private) cache at the same resolution —
    /// the pre-scale-out `Clone` semantics, for callers that need cache
    /// isolation (e.g. counting one link's solver traffic in isolation).
    /// The derived `Clone` shares the cache handle instead.
    #[must_use]
    pub fn clone_with_fresh_cache(&self) -> Self {
        let mut clone = self.clone();
        clone.cache = self.cache.detached();
        clone
    }

    /// Replaces the thermal stack (ring drift model, heater, variation,
    /// policy, tuning mode).
    ///
    /// The stack's ring drift model is re-anchored at this link's
    /// calibration ambient, preserving the invariant that the thermal
    /// machinery is a no-op at [`NanophotonicLink::ambient`].  To study a
    /// deliberately mis-calibrated ring bank, use
    /// [`onoc_photonics::thermal::ThermalSolver`] directly.
    ///
    /// Operating points already memoized under the previous stack stay in
    /// the cache but can never be served for the new one: the cache key
    /// carries the stack fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if the stack carries an invalid parameter (non-finite drift
    /// slope, negative fabrication σ, …).
    #[must_use]
    pub fn with_thermal_stack(mut self, mut stack: ThermalLinkStack) -> Self {
        stack.rings.calibration = self.ambient;
        self.stack_fingerprint = stack.fingerprint();
        self.solver = ThermalSolver::new(self.solver.base().channel().clone(), stack);
        self
    }

    /// Gives this link's ring banks a per-ring fabrication variation: a
    /// chip-instance-specific resonance offset per wavelength, sampled from
    /// the seeded σ.  With σ = 0 the link is bit-identical to the uniform
    /// (per-bank) model.
    #[must_use]
    pub fn with_fabrication_variation(self, variation: FabricationVariation) -> Self {
        let stack = ThermalLinkStack {
            variation,
            ..self.solver.stack().clone()
        };
        self.with_thermal_stack(stack)
    }

    /// Selects how tuned banks spend their per-ring freedom: pure heating
    /// (the default) or barrel-shift channel hopping.
    #[must_use]
    pub fn with_bank_tuning_mode(self, mode: BankTuningMode) -> Self {
        let stack = ThermalLinkStack {
            mode,
            ..self.solver.stack().clone()
        };
        self.with_thermal_stack(stack)
    }

    /// Bakes a design-time (GLOW-style) logical-wavelength → ring
    /// assignment into this link's banks: ring `assignment.ring_for_lane(j)`
    /// serves grid slot `j`, so at the assignment's design temperature the
    /// heaters fight only what drift and fabrication leave over.  Runtime
    /// barrel shifting ([`NanophotonicLink::with_bank_tuning_mode`])
    /// composes on top.  The identity assignment is bit-identical to an
    /// unassigned link (property-tested), though it fingerprints — and
    /// therefore caches — separately.
    ///
    /// # Errors
    ///
    /// [`LinkError::InvalidConfiguration`] when the assignment does not
    /// cover exactly the channel's wavelength count.
    pub fn with_wavelength_assignment(
        self,
        assignment: WavelengthAssignment,
    ) -> Result<Self, LinkError> {
        let lanes = self.channel().geometry().wavelength_count();
        if assignment.len() != lanes {
            return Err(LinkError::InvalidConfiguration {
                reason: format!(
                    "wavelength assignment covers {} lanes but the channel carries {lanes} \
                     wavelengths",
                    assignment.len()
                ),
            });
        }
        let stack = ThermalLinkStack {
            assignment: Some(assignment),
            ..self.solver.stack().clone()
        };
        Ok(self.with_thermal_stack(stack))
    }

    /// The design-time wavelength assignment baked into this link, if any.
    #[must_use]
    pub fn wavelength_assignment(&self) -> Option<&WavelengthAssignment> {
        self.solver.stack().assignment.as_ref()
    }

    /// A design-time assigner matching this link's spectral and heater
    /// parameters (grid spacing, drift slope, tuner) — the single source
    /// every caller builds a [`WavelengthAssigner`] from, so the search's
    /// cost model can never drift from the link's physics.  Feed its result
    /// to [`NanophotonicLink::with_wavelength_assignment`].
    #[must_use]
    pub fn wavelength_assigner(
        &self,
        strategy: AssignmentStrategy,
        seed: u64,
    ) -> WavelengthAssigner {
        let stack = self.solver.stack();
        WavelengthAssigner {
            tuner: stack.tuner,
            grid_spacing_nm: self.channel().geometry().grid.spacing().value(),
            slope_nm_per_kelvin: stack.rings.drift_nm_per_kelvin,
            strategy,
            seed,
        }
    }

    /// The fingerprint of the active thermal stack — the value the memoized
    /// operating-point cache keys on.
    #[must_use]
    pub fn stack_fingerprint(&self) -> u64 {
        self.stack_fingerprint
    }

    /// The per-ring spectral state of the link's banks at `temperature`.
    #[must_use]
    pub fn ring_bank_state_at(&self, temperature: Celsius) -> RingBankState {
        self.solver.bank_state_at(temperature)
    }

    /// The underlying MWSR channel model.
    #[must_use]
    pub fn channel(&self) -> &MwsrChannel {
        self.solver.base().channel()
    }

    /// The interface/power model.
    #[must_use]
    pub fn power_model(&self) -> &ChannelPowerModel {
        &self.power_model
    }

    /// The laser power solver (at the calibration temperature).
    #[must_use]
    pub fn solver(&self) -> &LaserPowerSolver {
        self.solver.base()
    }

    /// The temperature-aware solver.
    #[must_use]
    pub fn thermal_solver(&self) -> &ThermalSolver {
        &self.solver
    }

    /// The calibration ambient temperature of this link.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Evaluates the complete operating point of `scheme` at `target_ber`,
    /// at the calibration ambient temperature (the paper's evaluation).
    ///
    /// # Errors
    ///
    /// * [`LinkError::SchemeNotSustainable`] when the optical channel cannot
    ///   carry the encoded word within one IP cycle;
    /// * [`LinkError::Infeasible`] when the laser cannot reach the required
    ///   optical power (e.g. uncoded at BER = 10⁻¹²).
    pub fn operating_point(
        &self,
        scheme: EccScheme,
        target_ber: f64,
    ) -> Result<OperatingPoint, LinkError> {
        self.operating_point_at(scheme, target_ber, self.ambient)
    }

    /// Evaluates the complete operating point of `scheme` at `target_ber`
    /// with the chip at `temperature`.
    ///
    /// Away from the calibration ambient the rings drift, the configured
    /// tune-vs-tolerate policy decides how much heater power to spend, the
    /// laser runs at the new ambient, and the channel power gains the P_tune
    /// term.  At exactly the calibration ambient this reproduces the paper's
    /// numbers bit-for-bit.
    ///
    /// # Errors
    ///
    /// Same as [`NanophotonicLink::operating_point`]; additionally, a scheme
    /// feasible at the ambient may be [`LinkError::Infeasible`] at a higher
    /// temperature (the uncoded link at BER 10⁻¹¹ dies above ≈ 50 °C).
    pub fn operating_point_at(
        &self,
        scheme: EccScheme,
        target_ber: f64,
        temperature: Celsius,
    ) -> Result<OperatingPoint, LinkError> {
        if !self.power_model.config().supports(scheme) {
            return Err(LinkError::SchemeNotSustainable { scheme });
        }
        let solved = self.solver.solve_at(scheme, target_ber, temperature);
        self.telemetry.emit(|| TelemetryEvent::SolverInvoked {
            scheme: scheme.to_string(),
            target_ber,
            temperature_c: temperature.value(),
            feasible: solved.is_ok(),
        });
        let (laser, thermal) = solved?;
        let power = self.power_model.breakdown_with_tuning(
            scheme,
            laser.laser_electrical_power,
            thermal.tuning_power_per_lane,
        );
        let lanes = self.power_model.config().wavelength_lanes;
        let timing = self.power_model.timing(scheme);
        let energy_per_bit = self.power_model.energy_per_bit(&power, self.accounting);
        Ok(OperatingPoint {
            laser,
            power,
            channel_power: power.channel_total(lanes),
            timing,
            energy_per_bit,
            thermal,
        })
    }

    /// Memoized variant of [`NanophotonicLink::operating_point_at`].
    ///
    /// The requested temperature is snapped to the cache's bucket grid
    /// (0.05 K by default, see [`NanophotonicLink::with_cache_resolution`])
    /// and the point is solved at the snapped temperature exactly once per
    /// `(scheme, BER, bucket)` triple; repeated queries — temperature sweeps,
    /// many-ONI thermal simulations, repeated manager requests — are
    /// answered from the cache bit-identically.  Infeasible results are
    /// cached too, so a hot uncoded query does not re-run the solver either.
    ///
    /// # Errors
    ///
    /// Same as [`NanophotonicLink::operating_point_at`], evaluated at the
    /// snapped temperature.
    pub fn operating_point_memoized(
        &self,
        scheme: EccScheme,
        target_ber: f64,
        temperature: Celsius,
    ) -> Result<OperatingPoint, LinkError> {
        let snapped = self.cache.snap(temperature);
        let key = OpCacheKey {
            scheme,
            ber_bits: target_ber.to_bits(),
            bucket: self.cache.bucket(snapped),
            stack_fingerprint: self.stack_fingerprint,
        };
        let (solved, hit) = self.cache.get_or_solve(key, || {
            self.telemetry.emit(|| TelemetryEvent::CacheMiss {
                fingerprint: self.stack_fingerprint,
                scheme: scheme.to_string(),
                temperature_c: snapped.value(),
            });
            self.operating_point_at(scheme, target_ber, snapped)
        });
        if hit {
            self.telemetry.emit(|| TelemetryEvent::CacheHit {
                fingerprint: self.stack_fingerprint,
                scheme: scheme.to_string(),
                temperature_c: snapped.value(),
            });
        }
        solved
    }

    /// Hit/miss/entry counters of the memoized operating-point cache.
    #[must_use]
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Empties the memoized operating-point cache and resets its counters.
    /// With a shared cache, this clears the cache for every sharer.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The representative temperature the cache snaps `temperature` to.
    #[must_use]
    pub fn cache_bucket_temperature(&self, temperature: Celsius) -> Celsius {
        self.cache.snap(temperature)
    }

    /// Evaluates every scheme in `candidates` at `target_ber` and the
    /// calibration ambient, silently dropping infeasible ones.
    #[must_use]
    pub fn feasible_points(
        &self,
        candidates: &[EccScheme],
        target_ber: f64,
    ) -> Vec<OperatingPoint> {
        self.feasible_points_at(candidates, target_ber, self.ambient)
    }

    /// Evaluates every scheme in `candidates` at `target_ber` and
    /// `temperature`, silently dropping infeasible ones.
    #[must_use]
    pub fn feasible_points_at(
        &self,
        candidates: &[EccScheme],
        target_ber: f64,
        temperature: Celsius,
    ) -> Vec<OperatingPoint> {
        candidates
            .iter()
            .filter_map(|&scheme| {
                self.operating_point_at(scheme, target_ber, temperature)
                    .ok()
            })
            .collect()
    }

    /// Serves a [`LinkRequest`]: among all feasible schemes at the request's
    /// temperature, returns the best one under the request's objective that
    /// satisfies the constraints, or `None` when no scheme qualifies.
    ///
    /// Queries go through the memoized operating-point cache (the request
    /// temperature is snapped to the cache's 0.05 K bucket grid), so a
    /// manager answering many requests at recurring temperatures invokes
    /// the photonic solver only once per distinct point.
    #[must_use]
    pub fn serve(&self, request: &LinkRequest, candidates: &[EccScheme]) -> Option<OperatingPoint> {
        let temperature = request.temperature.unwrap_or(self.ambient);
        candidates
            .iter()
            .filter_map(|&scheme| {
                self.operating_point_memoized(scheme, request.target_ber, temperature)
                    .ok()
            })
            .filter(|p| {
                request
                    .max_communication_time_factor
                    .is_none_or(|ct| p.communication_time_factor() <= ct + 1e-12)
            })
            .filter(|p| {
                request
                    .max_channel_power
                    .is_none_or(|cap| p.channel_power.value() <= cap.value() + 1e-12)
            })
            .min_by(|a, b| {
                let key = |p: &OperatingPoint| match request.objective {
                    SelectionObjective::MinPower => (p.channel_power.value(), 0.0),
                    SelectionObjective::MinLatency => {
                        (p.communication_time_factor(), p.channel_power.value())
                    }
                };
                // total_cmp is a total order on f64 (solver outputs are
                // always finite, but the comparator must not be able to
                // panic either way).
                let (a0, a1) = key(a);
                let (b0, b1) = key(b);
                a0.total_cmp(&b0).then(a1.total_cmp(&b1))
            })
    }
}

impl Default for NanophotonicLink {
    fn default() -> Self {
        Self::paper_link()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> NanophotonicLink {
        NanophotonicLink::paper_link()
    }

    #[test]
    fn paper_headline_laser_power_reduction() {
        let l = link();
        let uncoded = l.operating_point(EccScheme::Uncoded, 1e-11).unwrap();
        let h74 = l.operating_point(EccScheme::Hamming74, 1e-11).unwrap();
        let h7164 = l.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();
        // Roughly −45% / −49% channel power as in Fig. 6a.
        let saving74 = 1.0 - h74.channel_power.value() / uncoded.channel_power.value();
        let saving7164 = 1.0 - h7164.channel_power.value() / uncoded.channel_power.value();
        assert!(
            saving74 > 0.40 && saving74 < 0.60,
            "H(7,4) saving = {saving74}"
        );
        assert!(
            saving7164 > 0.35 && saving7164 < 0.55,
            "H(71,64) saving = {saving7164}"
        );
    }

    #[test]
    fn unreachable_ber_without_coding() {
        let l = link();
        assert!(matches!(
            l.operating_point(EccScheme::Uncoded, 1e-12),
            Err(LinkError::Infeasible(_))
        ));
        assert!(l.operating_point(EccScheme::Hamming74, 1e-12).is_ok());
        assert!(l.operating_point(EccScheme::Hamming7164, 1e-12).is_ok());
    }

    #[test]
    fn operating_point_is_internally_consistent() {
        let l = link();
        let p = l.operating_point(EccScheme::Hamming7164, 1e-9).unwrap();
        assert_eq!(p.scheme(), EccScheme::Hamming7164);
        assert!((p.target_ber() - 1e-9).abs() < 1e-20);
        assert!((p.channel_power.value() - p.power.channel_total(16).value()).abs() < 1e-9);
        assert!((p.communication_time_factor() - 71.0 / 64.0).abs() < 1e-9);
        assert!(p.energy_per_bit.value() > 0.5 && p.energy_per_bit.value() < 10.0);
    }

    #[test]
    fn feasible_points_drop_infeasible_schemes() {
        let l = link();
        let points = l.feasible_points(&EccScheme::paper_schemes(), 1e-12);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.scheme() != EccScheme::Uncoded));
    }

    #[test]
    fn serve_picks_the_lowest_power_scheme_within_constraints() {
        let l = link();
        // Latency-insensitive: a Hamming code wins on power.
        let relaxed = l
            .serve(
                &LinkRequest::best_effort(1e-11),
                &EccScheme::paper_schemes(),
            )
            .unwrap();
        assert_ne!(relaxed.scheme(), EccScheme::Uncoded);

        // Tight deadline (CT ≤ 1.0): only the uncoded path qualifies.
        let tight = l
            .serve(
                &LinkRequest {
                    max_communication_time_factor: Some(1.0),
                    ..LinkRequest::best_effort(1e-11)
                },
                &EccScheme::paper_schemes(),
            )
            .unwrap();
        assert_eq!(tight.scheme(), EccScheme::Uncoded);

        // Impossible combination: BER 1e-12 with CT ≤ 1.0.
        assert!(l
            .serve(
                &LinkRequest {
                    max_communication_time_factor: Some(1.0),
                    ..LinkRequest::best_effort(1e-12)
                },
                &EccScheme::paper_schemes(),
            )
            .is_none());
    }

    #[test]
    fn power_cap_filters_operating_points() {
        let l = link();
        let capped = l.serve(
            &LinkRequest {
                max_channel_power: Some(Milliwatts::new(150.0)),
                ..LinkRequest::best_effort(1e-11)
            },
            &EccScheme::paper_schemes(),
        );
        let uncapped = l
            .serve(
                &LinkRequest::best_effort(1e-11),
                &EccScheme::paper_schemes(),
            )
            .unwrap();
        assert!(capped.is_some());
        assert!(capped.unwrap().channel_power.value() <= 150.0);
        assert!(uncapped.channel_power.value() <= 150.0);
    }

    #[test]
    fn scheme_not_sustainable_on_a_narrow_interface() {
        let mut interface = InterfaceConfig::paper_default();
        interface.wavelength_lanes = 8; // 80 Gb/s: too narrow for H(7,4)'s 112 bits/cycle.
        let l = NanophotonicLink::new(PaperCalibration::dac17(), interface);
        assert!(matches!(
            l.operating_point(EccScheme::Hamming74, 1e-9),
            Err(LinkError::SchemeNotSustainable { .. })
        ));
        assert!(l.operating_point(EccScheme::Hamming7164, 1e-9).is_ok());
    }

    #[test]
    fn error_display() {
        let l = link();
        let err = l.operating_point(EccScheme::Uncoded, 1e-12).unwrap_err();
        assert!(err.to_string().contains("no feasible operating point"));
    }

    #[test]
    fn ambient_operating_point_carries_no_thermal_cost() {
        let l = link();
        assert!((l.ambient().value() - 25.0).abs() < 1e-12);
        let p = l.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();
        assert!(p.thermal.free_drift.is_zero());
        assert!(p.power.tuning.is_zero());
        assert!((p.temperature().value() - 25.0).abs() < 1e-12);
        // operating_point_at at the ambient is the identical computation.
        let q = l
            .operating_point_at(EccScheme::Hamming7164, 1e-11, Celsius::new(25.0))
            .unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn hot_operating_point_charges_laser_and_tuning() {
        let l = link();
        let cool = l.operating_point(EccScheme::Hamming74, 1e-11).unwrap();
        let hot = l
            .operating_point_at(EccScheme::Hamming74, 1e-11, Celsius::new(85.0))
            .unwrap();
        assert!(hot.power.laser.value() > cool.power.laser.value());
        assert!(hot.power.tuning.value() > 0.0);
        assert!(hot.channel_power.value() > cool.channel_power.value());
        assert!(hot.energy_per_bit.value() > cool.energy_per_bit.value());
        assert!((hot.thermal.free_drift.nanometers() - 6.0).abs() < 1e-9);
        assert!(hot.thermal.residual_drift.abs().nanometers() < 0.05);
    }

    #[test]
    fn uncoded_feasibility_is_temperature_dependent() {
        let l = link();
        assert!(l
            .operating_point_at(EccScheme::Uncoded, 1e-11, Celsius::new(45.0))
            .is_ok());
        assert!(matches!(
            l.operating_point_at(EccScheme::Uncoded, 1e-11, Celsius::new(85.0)),
            Err(LinkError::Infeasible(_))
        ));
        let points = l.feasible_points_at(&EccScheme::paper_schemes(), 1e-11, Celsius::new(85.0));
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.scheme() != EccScheme::Uncoded));
    }

    #[test]
    fn serve_honours_the_request_temperature_and_objective() {
        let l = link();
        // MinLatency at the ambient: the fastest feasible scheme is uncoded.
        let request = LinkRequest {
            objective: SelectionObjective::MinLatency,
            ..LinkRequest::best_effort(1e-11)
        };
        let cool = l.serve(&request, &EccScheme::paper_schemes()).unwrap();
        assert_eq!(cool.scheme(), EccScheme::Uncoded);
        // The same request at 85 C lands on H(71,64): fastest survivor.
        let hot = l
            .serve(
                &request.at_temperature(Celsius::new(85.0)),
                &EccScheme::paper_schemes(),
            )
            .unwrap();
        assert_eq!(hot.scheme(), EccScheme::Hamming7164);
        assert!(hot.power.tuning.value() > 0.0);
    }

    #[test]
    fn memoized_points_are_bit_identical_to_the_uncached_solver() {
        let l = link();
        for scheme in EccScheme::paper_schemes() {
            for t in [25.0, 40.0, 55.0, 70.0, 85.0] {
                let cached = l.operating_point_memoized(scheme, 1e-11, Celsius::new(t));
                let fresh = l.operating_point_at(scheme, 1e-11, Celsius::new(t));
                assert_eq!(cached, fresh, "{scheme} at {t}");
                // And a second query is answered from the cache, identically.
                let again = l.operating_point_memoized(scheme, 1e-11, Celsius::new(t));
                assert_eq!(cached, again, "{scheme} at {t} (cached)");
            }
        }
        let counters = l.cache_counters();
        assert_eq!(counters.misses, 15, "one solve per distinct point");
        assert_eq!(counters.hits, 15, "every repeat is a hit");
        assert_eq!(counters.entries, 15);
        assert!((counters.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_snaps_temperatures_within_one_bucket() {
        let l = link();
        // 0.05 K buckets: 54.99 and 55.01 share the 55.0 bucket.
        let a = l
            .operating_point_memoized(EccScheme::Hamming7164, 1e-11, Celsius::new(54.99))
            .unwrap();
        let b = l
            .operating_point_memoized(EccScheme::Hamming7164, 1e-11, Celsius::new(55.01))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(l.cache_counters().misses, 1);
        assert_eq!(l.cache_counters().hits, 1);
        assert!((l.cache_bucket_temperature(Celsius::new(55.01)).value() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_results_are_cached_too() {
        let l = link();
        for _ in 0..3 {
            assert!(l
                .operating_point_memoized(EccScheme::Uncoded, 1e-11, Celsius::new(85.0))
                .is_err());
        }
        let counters = l.cache_counters();
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.hits, 2);
    }

    #[test]
    fn serve_goes_through_the_cache() {
        let l = link();
        for _ in 0..4 {
            let _ = l.serve(
                &LinkRequest::best_effort(1e-11),
                &EccScheme::paper_schemes(),
            );
        }
        let counters = l.cache_counters();
        assert_eq!(counters.misses, 3, "one solve per candidate scheme");
        assert_eq!(counters.hits, 9, "repeat requests never re-solve");
    }

    #[test]
    fn clearing_and_fresh_cache_cloning_reset_the_cache() {
        let l = link();
        let _ = l.operating_point_memoized(EccScheme::Uncoded, 1e-11, Celsius::new(25.0));
        assert_eq!(l.cache_counters().entries, 1);
        let isolated = l.clone_with_fresh_cache();
        assert_eq!(isolated.cache_counters().entries, 0);
        assert_eq!(isolated.cache_counters().total(), 0);
        assert!(!isolated.shared_cache().ptr_eq(&l.shared_cache()));
        l.clear_cache();
        assert_eq!(l.cache_counters(), CacheCounters::default());
        // A custom resolution snaps more coarsely.
        let coarse = link().with_cache_resolution(1.0).unwrap();
        assert!((coarse.cache_bucket_temperature(Celsius::new(55.4)).value() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn plain_clones_share_the_cache_handle() {
        let l = link();
        let twin = l.clone();
        assert!(twin.shared_cache().ptr_eq(&l.shared_cache()));
        let _ = l.operating_point_memoized(EccScheme::Uncoded, 1e-11, Celsius::new(25.0));
        // The twin answers the same query as a pure hit from the shared map.
        let _ = twin.operating_point_memoized(EccScheme::Uncoded, 1e-11, Celsius::new(25.0));
        let counters = l.cache_counters();
        assert_eq!(counters.misses, 1, "one solve across both sharers");
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.entries, 1);
        assert_eq!(twin.cache_counters(), counters);
    }

    #[test]
    fn with_shared_cache_joins_an_existing_fleet_cache() {
        let fleet = SharedOpCache::new();
        let a = link().with_shared_cache(fleet.clone());
        let b = link().with_shared_cache(fleet.clone());
        let _ = a.operating_point_memoized(EccScheme::Hamming74, 1e-11, Celsius::new(40.0));
        let _ = b.operating_point_memoized(EccScheme::Hamming74, 1e-11, Celsius::new(40.0));
        assert_eq!(fleet.counters().misses, 1, "identical stacks share entries");
        assert_eq!(fleet.counters().hits, 1);
        // merge() sums snapshots — the heterogeneous-fleet aggregation path.
        let mut merged = a.cache_counters();
        merged.merge(b.cache_counters());
        assert_eq!(merged.hits, 2);
        assert_eq!(merged.misses, 2);
    }

    #[test]
    fn cache_resolution_rejects_degenerate_values() {
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = link().with_cache_resolution(bad).unwrap_err();
            assert!(
                matches!(err, LinkError::InvalidConfiguration { .. }),
                "{bad} must be rejected"
            );
            assert!(err.to_string().contains("cache resolution"), "{bad}: {err}");
        }
        // A valid resolution still goes through.
        assert!(link().with_cache_resolution(4.0).is_ok());
    }

    #[test]
    fn cache_key_carries_the_stack_fingerprint() {
        // Memoize under the default (σ = 0) stack, then swap in a varied
        // stack: the old entry must never be served for the new chip
        // instance, and the fresh solve must match the uncached solver.
        let l = link();
        let t = Celsius::new(55.0);
        let plain = l
            .operating_point_memoized(EccScheme::Hamming7164, 1e-11, t)
            .unwrap();
        assert_eq!(l.cache_counters().misses, 1);
        let plain_fingerprint = l.stack_fingerprint();
        let varied = l.with_fabrication_variation(FabricationVariation::new(0.04, 3));
        // The cache map travelled along with the link…
        assert_eq!(varied.cache_counters().entries, 1);
        let fresh = varied
            .operating_point_memoized(EccScheme::Hamming7164, 1e-11, t)
            .unwrap();
        // …but the fingerprint in the key forces a re-solve…
        assert_eq!(varied.cache_counters().misses, 2);
        assert_eq!(
            fresh,
            varied
                .operating_point_at(EccScheme::Hamming7164, 1e-11, t)
                .unwrap()
        );
        // …and the varied chip costs more than the perfect one.
        assert!(fresh.channel_power.value() > plain.channel_power.value());
        assert_ne!(varied.stack_fingerprint(), plain_fingerprint);
    }

    #[test]
    fn barrel_shift_mode_cuts_tuning_power_on_the_link() {
        let pure = link();
        let barrel = link().with_bank_tuning_mode(BankTuningMode::full_barrel_shift(16));
        let t = Celsius::new(65.0);
        let p = pure
            .operating_point_at(EccScheme::Hamming7164, 1e-11, t)
            .unwrap();
        let b = barrel
            .operating_point_at(EccScheme::Hamming7164, 1e-11, t)
            .unwrap();
        assert!(b.power.tuning.value() < p.power.tuning.value());
        assert!(b.channel_power.value() < p.channel_power.value());
        assert_eq!(b.thermal.barrel_shift, 5, "40 K = 4 nm = 5 spacings");
        // At the ambient the shift is a no-op and the paper pins hold.
        let cool = barrel
            .operating_point(EccScheme::Hamming7164, 1e-11)
            .unwrap();
        assert_eq!(cool.thermal.barrel_shift, 0);
        assert_eq!(
            cool,
            pure.operating_point(EccScheme::Hamming7164, 1e-11).unwrap()
        );
    }

    #[test]
    fn wavelength_assignment_threads_through_the_link() {
        let plain = link();
        assert!(plain.wavelength_assignment().is_none());
        // Identity assignment: bit-identical operating points, distinct
        // fingerprint (memoized entries can never alias the two stacks).
        let identity = link()
            .with_wavelength_assignment(WavelengthAssignment::identity(16))
            .unwrap();
        assert!(identity
            .wavelength_assignment()
            .is_some_and(WavelengthAssignment::is_identity));
        assert_ne!(identity.stack_fingerprint(), plain.stack_fingerprint());
        for t in [25.0, 55.0, 85.0] {
            assert_eq!(
                plain.operating_point_at(EccScheme::Hamming7164, 1e-11, Celsius::new(t)),
                identity.operating_point_at(EccScheme::Hamming7164, 1e-11, Celsius::new(t)),
                "{t} C"
            );
        }
        // A design-for-85 °C assignment slashes the hot tuning bill and
        // revives the uncoded path at 85 °C.
        let hot = Celsius::new(85.0);
        let assigner = plain.wavelength_assigner(AssignmentStrategy::GreedyRefine, 1);
        let designed = link()
            .with_wavelength_assignment(assigner.assign(&plain.ring_bank_state_at(hot)))
            .unwrap();
        let p = plain
            .operating_point_at(EccScheme::Hamming7164, 1e-11, hot)
            .unwrap();
        let d = designed
            .operating_point_at(EccScheme::Hamming7164, 1e-11, hot)
            .unwrap();
        assert!(d.power.tuning.value() < 0.2 * p.power.tuning.value());
        assert!(plain
            .operating_point_at(EccScheme::Uncoded, 1e-11, hot)
            .is_err());
        assert!(designed
            .operating_point_at(EccScheme::Uncoded, 1e-11, hot)
            .is_ok());
        // A wrong-length assignment is a configuration error, not a panic.
        let err = link()
            .with_wavelength_assignment(WavelengthAssignment::identity(4))
            .unwrap_err();
        assert!(err.to_string().contains("wavelength assignment"), "{err}");
    }

    #[test]
    fn ring_bank_state_reflects_the_variation() {
        let l = link().with_fabrication_variation(FabricationVariation::new(0.04, 7));
        let state = l.ring_bank_state_at(Celsius::new(25.0));
        assert_eq!(state.ring_count(), 16);
        assert!(!state.is_uniform());
        assert!(state.thermal_excursion().is_zero());
        // σ = 0 stays the per-bank scalar model, bit-identically.
        let plain = link();
        assert!(plain.ring_bank_state_at(Celsius::new(25.0)).is_uniform());
        let a = plain.operating_point_at(EccScheme::Hamming74, 1e-11, Celsius::new(55.0));
        let zeroed = link().with_fabrication_variation(FabricationVariation::new(0.0, 99));
        let b = zeroed.operating_point_at(EccScheme::Hamming74, 1e-11, Celsius::new(55.0));
        assert_eq!(a, b);
    }

    #[test]
    fn thermal_stack_is_anchored_at_the_calibration_ambient() {
        // A link calibrated at a non-paper ambient must still see zero drift
        // and zero tuning power *at that ambient* — the ring bank is aligned
        // wherever it was calibrated.
        let mut calibration = PaperCalibration::dac17();
        calibration.ambient = Celsius::new(40.0);
        let l = NanophotonicLink::new(calibration, InterfaceConfig::paper_default());
        assert!((l.ambient().value() - 40.0).abs() < 1e-12);
        let p = l.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();
        assert!(p.thermal.free_drift.is_zero());
        assert!(p.power.tuning.is_zero());
        // And excursions are measured from 40 °C, not 25 °C.
        let hot = l
            .operating_point_at(EccScheme::Hamming7164, 1e-11, Celsius::new(50.0))
            .unwrap();
        assert!((hot.thermal.free_drift.nanometers() - 1.0).abs() < 1e-9);
    }
}
