//! Plain-text report rendering for the figure/table binaries.
//!
//! The benchmark harness (`onoc-bench`) prints the regenerated tables and
//! figure series as aligned text tables; the formatting lives here so the
//! examples and integration tests can reuse it.

use onoc_ecc_codes::EccScheme;

use crate::link::OperatingPoint;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a BER as the compact scientific notation used in the paper's
/// figures (e.g. `1e-11`).
#[must_use]
pub fn format_ber(ber: f64) -> String {
    format!("{ber:.0e}")
}

/// Renders one Fig. 6a-style row for an operating point.
#[must_use]
pub fn operating_point_row(point: &OperatingPoint) -> Vec<String> {
    vec![
        point.scheme().to_string(),
        format_ber(point.target_ber()),
        format!("{:.3}", point.power.encoder_decoder.value()),
        format!("{:.2}", point.power.modulation.value()),
        format!("{:.2}", point.power.laser.value()),
        format!("{:.2}", point.power.per_wavelength_total().value()),
        format!("{:.1}", point.channel_power.value()),
        format!("{:.2}", point.communication_time_factor()),
        format!("{:.2}", point.energy_per_bit.value()),
    ]
}

/// Header matching [`operating_point_row`].
#[must_use]
pub fn operating_point_header() -> Vec<String> {
    [
        "scheme",
        "BER",
        "Penc+dec (mW)",
        "PMR (mW)",
        "Plaser (mW)",
        "Pwl (mW)",
        "Pchannel (mW)",
        "CT",
        "pJ/bit",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect()
}

/// Convenience: renders a full table of operating points.
#[must_use]
pub fn render_operating_points(points: &[OperatingPoint]) -> String {
    let mut table = TextTable::new(operating_point_header());
    for p in points {
        table.push_row(operating_point_row(p));
    }
    table.render()
}

/// Renders an infeasible cell the way the figure binaries report it.
#[must_use]
pub fn infeasible_cell(scheme: EccScheme, ber: f64) -> String {
    format!(
        "{scheme} @ {}: not reachable (laser power ceiling)",
        format_ber(ber)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::NanophotonicLink;

    #[test]
    fn table_alignment_and_rendering() {
        let mut t = TextTable::new(vec!["a", "long header", "c"]);
        t.push_row(vec!["1", "2", "3"]);
        t.push_row(vec!["wide cell", "x", "y"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long header"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn ber_formatting() {
        assert_eq!(format_ber(1e-11), "1e-11");
        assert_eq!(format_ber(1e-3), "1e-3");
    }

    #[test]
    fn operating_point_rows_render() {
        let link = NanophotonicLink::paper_link();
        let points: Vec<_> = link.feasible_points(&EccScheme::paper_schemes(), 1e-11);
        let rendered = render_operating_points(&points);
        assert!(rendered.contains("w/o ECC"));
        assert!(rendered.contains("H(7,4)"));
        assert!(rendered.contains("H(71,64)"));
        assert!(rendered.contains("1e-11"));
    }

    #[test]
    fn infeasible_cell_mentions_the_ceiling() {
        let text = infeasible_cell(EccScheme::Uncoded, 1e-12);
        assert!(text.contains("not reachable"));
        assert!(text.contains("1e-12"));
    }

    #[test]
    fn row_and_header_have_matching_widths() {
        let link = NanophotonicLink::paper_link();
        let point = link.operating_point(EccScheme::Hamming74, 1e-9).unwrap();
        assert_eq!(
            operating_point_row(&point).len(),
            operating_point_header().len()
        );
    }
}
