//! High-level nanophotonic-link API: the paper's primary contribution.
//!
//! `onoc-link` ties the substrates of the workspace together into the system
//! proposed by the DAC'17 paper: a nanophotonic MWSR interconnect whose
//! optical-link manager jointly selects (i) the error-correcting code used
//! for data transmission and (ii) the laser output power, so that each
//! communication meets its BER requirement at the lowest possible power or
//! the shortest possible communication time.
//!
//! * [`link::NanophotonicLink`] — a configured link; produces complete
//!   [`link::OperatingPoint`]s (laser power, channel power breakdown, energy
//!   per bit, communication time) for any (ECC scheme, target BER) pair.
//! * [`explore`] — design-space exploration: sweeps over schemes and BER
//!   targets, Pareto-front extraction (Fig. 6b), code-length ablations.
//! * [`policy`] — the run-time energy/performance manager of Section III-C,
//!   selecting a scheme given application requirements (deadline, BER,
//!   power budget).
//! * [`report`] — plain-text table rendering used by the figure/table
//!   binaries of `onoc-bench`.
//!
//! # Quick start
//!
//! ```
//! use onoc_link::{NanophotonicLink, link::LinkRequest};
//! use onoc_ecc_codes::EccScheme;
//!
//! let link = NanophotonicLink::paper_link();
//!
//! // The headline result: at BER = 1e-11 the Hamming codes cut the laser
//! // power roughly in half relative to the uncoded transmission.
//! let uncoded = link.operating_point(EccScheme::Uncoded, 1e-11)?;
//! let coded = link.operating_point(EccScheme::Hamming74, 1e-11)?;
//! assert!(coded.laser.laser_electrical_power.value()
//!     < 0.6 * uncoded.laser.laser_electrical_power.value());
//! # Ok::<(), onoc_link::link::LinkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod explore;
pub mod link;
pub mod policy;
pub mod report;

pub use cache::{OpCacheKey, SharedOpCache};
pub use explore::{DesignSpace, ParetoPoint};
pub use link::{CacheCounters, LinkError, NanophotonicLink, OperatingPoint, SelectionObjective};
pub use onoc_photonics::thermal::{ThermalLinkStack, ThermalSummary};
pub use onoc_thermal::{AssignmentStrategy, WavelengthAssigner, WavelengthAssignment};
pub use policy::{LinkManager, ManagerDecision, ThermalRuntimeManager, TrafficClass};
