//! SNR ↔ BER conversions for OOK detection, with and without coding.
//!
//! The paper's Eq. 1 and Eq. 3 describe uncoded OOK detection:
//!
//! ```text
//! p = ½ · erfc(√SNR)              (Eq. 3: raw channel BER at a given SNR)
//! SNR = [erfc⁻¹(2·p)]²            (Eq. 1, written with the equivalent
//!                                  erf⁻¹(1 − 2·p) in the paper)
//! ```
//!
//! With an ECC the *decoded* BER is related to the raw `p` by the code's
//! transfer function (Eq. 2, implemented in [`onoc_ecc_codes::ber`]); the SNR
//! requirement for a target decoded BER is obtained by inverting that
//! transfer function first and then applying Eq. 1 to the resulting raw BER.

use onoc_ecc_codes::ber::raw_ber_for_target;
use onoc_ecc_codes::EccScheme;

use crate::math::{erfc, erfc_inv};

/// Raw channel BER of uncoded OOK detection at a given (linear) SNR (Eq. 3).
///
/// # Panics
///
/// Panics if `snr` is negative.
///
/// ```
/// use onoc_ber::snr::ber_from_snr;
/// // SNR ≈ 22.75 corresponds to a 1e-11 error rate.
/// let ber = ber_from_snr(22.75);
/// assert!(ber > 0.5e-11 && ber < 2e-11);
/// ```
#[must_use]
pub fn ber_from_snr(snr: f64) -> f64 {
    assert!(snr >= 0.0, "SNR must be non-negative");
    0.5 * erfc(snr.sqrt())
}

/// Linear SNR required for an uncoded OOK link to reach `ber` (Eq. 1).
///
/// # Panics
///
/// Panics unless `0 < ber < 0.5`.
///
/// ```
/// use onoc_ber::snr::{ber_from_snr, snr_from_ber_uncoded};
/// let snr = snr_from_ber_uncoded(1e-9);
/// assert!((ber_from_snr(snr) - 1e-9).abs() / 1e-9 < 1e-4);
/// ```
#[must_use]
pub fn snr_from_ber_uncoded(ber: f64) -> f64 {
    assert!(ber > 0.0 && ber < 0.5, "BER must be in (0, 0.5)");
    let x = erfc_inv(2.0 * ber);
    x * x
}

/// Linear SNR required on the optical channel so that, after decoding with
/// `scheme`, the delivered BER meets `target_ber`.
///
/// For [`EccScheme::Uncoded`] this reduces to Eq. 1; for coded schemes the
/// channel may run at the (larger) raw BER tolerated by the code, which is
/// exactly the mechanism that lets the laser output power drop.
///
/// # Panics
///
/// Panics unless `0 < target_ber < 0.5`.
///
/// ```
/// use onoc_ber::snr::required_snr;
/// use onoc_ecc_codes::EccScheme;
///
/// let uncoded = required_snr(EccScheme::Uncoded, 1e-11);
/// let h74 = required_snr(EccScheme::Hamming74, 1e-11);
/// let h7164 = required_snr(EccScheme::Hamming7164, 1e-11);
/// assert!(uncoded > h7164 && h7164 > h74);
/// ```
#[must_use]
pub fn required_snr(scheme: EccScheme, target_ber: f64) -> f64 {
    let raw = raw_ber_for_target(scheme, target_ber);
    snr_from_ber_uncoded(raw)
}

/// Coding gain of `scheme` at `target_ber`, in decibels of SNR relaxation
/// relative to the uncoded link.
///
/// # Panics
///
/// Panics unless `0 < target_ber < 0.5`.
#[must_use]
pub fn coding_gain_db(scheme: EccScheme, target_ber: f64) -> f64 {
    let uncoded = required_snr(EccScheme::Uncoded, target_ber);
    let coded = required_snr(scheme, target_ber);
    10.0 * (uncoded / coded).log10()
}

/// A (BER target → SNR requirement) table row, convenient for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SnrRequirement {
    /// Coding scheme.
    pub scheme: EccScheme,
    /// Target decoded BER.
    pub target_ber: f64,
    /// Maximum raw channel BER tolerated by the scheme.
    pub raw_ber: f64,
    /// Required linear SNR on the optical channel.
    pub snr: f64,
    /// Required SNR in dB.
    pub snr_db: f64,
}

impl SnrRequirement {
    /// Evaluates the requirement for one (scheme, target) pair.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_ber < 0.5`.
    #[must_use]
    pub fn evaluate(scheme: EccScheme, target_ber: f64) -> Self {
        let raw_ber = raw_ber_for_target(scheme, target_ber);
        let snr = snr_from_ber_uncoded(raw_ber);
        Self {
            scheme,
            target_ber,
            raw_ber,
            snr,
            snr_db: 10.0 * snr.log10(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_eq3_are_mutual_inverses() {
        for &ber in &[1e-3, 1e-6, 1e-9, 1e-12] {
            let snr = snr_from_ber_uncoded(ber);
            let back = ber_from_snr(snr);
            assert!((back - ber).abs() / ber < 1e-4, "ber {ber}");
        }
    }

    #[test]
    fn uncoded_snr_reference_point() {
        // erfc_inv(2e-11) ≈ 4.77 → SNR ≈ 22.7 (linear), ≈ 13.6 dB.
        let snr = snr_from_ber_uncoded(1e-11);
        assert!(snr > 22.0 && snr < 23.5, "snr = {snr}");
    }

    #[test]
    fn required_snr_is_monotone_in_target() {
        for scheme in [
            EccScheme::Uncoded,
            EccScheme::Hamming74,
            EccScheme::Hamming7164,
        ] {
            let strict = required_snr(scheme, 1e-12);
            let loose = required_snr(scheme, 1e-6);
            assert!(strict > loose, "{scheme}");
        }
    }

    #[test]
    fn coded_schemes_need_less_snr_than_uncoded() {
        for &target in &[1e-6, 1e-9, 1e-11, 1e-12] {
            let uncoded = required_snr(EccScheme::Uncoded, target);
            for scheme in [
                EccScheme::Hamming74,
                EccScheme::Hamming7164,
                EccScheme::Hamming1511,
            ] {
                assert!(
                    required_snr(scheme, target) < uncoded,
                    "{scheme} at {target}"
                );
            }
        }
    }

    #[test]
    fn h74_needs_less_snr_than_h7164() {
        // Shorter blocks suffer fewer double errors, so H(7,4) tolerates the
        // noisiest channel — the ordering behind Fig. 5 of the paper.
        let h74 = required_snr(EccScheme::Hamming74, 1e-11);
        let h7164 = required_snr(EccScheme::Hamming7164, 1e-11);
        assert!(h74 < h7164);
        // The relaxation is roughly a factor of two in linear SNR.
        let uncoded = required_snr(EccScheme::Uncoded, 1e-11);
        assert!(uncoded / h74 > 1.9 && uncoded / h74 < 2.6);
    }

    #[test]
    fn coding_gain_is_positive_and_increases_with_ber_strictness() {
        let loose = coding_gain_db(EccScheme::Hamming74, 1e-6);
        let strict = coding_gain_db(EccScheme::Hamming74, 1e-12);
        assert!(loose > 0.0);
        assert!(strict > loose);
        // Around 3-4 dB of coding gain at 1e-12 for H(7,4).
        assert!(strict > 2.5 && strict < 5.0, "gain = {strict}");
    }

    #[test]
    fn uncoded_coding_gain_is_zero() {
        assert!(coding_gain_db(EccScheme::Uncoded, 1e-9).abs() < 1e-9);
    }

    #[test]
    fn snr_requirement_row_is_self_consistent() {
        let row = SnrRequirement::evaluate(EccScheme::Hamming7164, 1e-11);
        assert!(row.raw_ber > row.target_ber);
        assert!((row.snr_db - 10.0 * row.snr.log10()).abs() < 1e-9);
        assert!((ber_from_snr(row.snr) - row.raw_ber).abs() / row.raw_ber < 1e-4);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_snr_panics() {
        let _ = ber_from_snr(-1.0);
    }

    #[test]
    #[should_panic(expected = "BER must be in")]
    fn ber_out_of_range_panics() {
        let _ = snr_from_ber_uncoded(0.7);
    }
}
