//! Receiver detection model (Eq. 4 of the paper).
//!
//! The paper relates the SNR seen by the decision circuit to the optical
//! signal power at the photodetector through
//!
//! ```text
//! SNR = ℜ · (OP_signal − OP_crosstalk) / i_n          (Eq. 4)
//! ```
//!
//! where `ℜ` is the photodetector responsivity (1 A/W), `i_n` the dark
//! current (4 µA) and `OP_crosstalk` the worst-case crosstalk power collected
//! from the other wavelengths of the MWSR channel.  Inverting Eq. 4 gives the
//! optical signal power the link budget must deliver for a required SNR.

use onoc_units::{AmpsPerWatt, Microamps, Microwatts};
use serde::{Deserialize, Serialize};

/// Photodetector + decision-circuit model.
///
/// ```
/// use onoc_ber::ReceiverModel;
/// use onoc_units::{AmpsPerWatt, Microamps, Microwatts};
///
/// let rx = ReceiverModel::new(AmpsPerWatt::new(1.0), Microamps::new(4.0));
/// let signal = rx.required_signal_power(22.75, Microwatts::new(5.0));
/// // 22.75 × 4 µA / 1 A/W + 5 µW of crosstalk headroom = 96 µW.
/// assert!((signal.value() - 96.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReceiverModel {
    responsivity: AmpsPerWatt,
    dark_current: Microamps,
}

impl ReceiverModel {
    /// Creates a receiver model from its responsivity and dark current.
    ///
    /// # Panics
    ///
    /// Panics if the dark current is zero (the SNR of Eq. 4 would diverge).
    #[must_use]
    pub fn new(responsivity: AmpsPerWatt, dark_current: Microamps) -> Self {
        assert!(
            dark_current.value() > 0.0,
            "dark current must be strictly positive"
        );
        assert!(
            responsivity.value() > 0.0,
            "responsivity must be strictly positive"
        );
        Self {
            responsivity,
            dark_current,
        }
    }

    /// The receiver assumed throughout the paper: ℜ = 1 A/W, i_n = 4 µA.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self::new(AmpsPerWatt::new(1.0), Microamps::new(4.0))
    }

    /// Photodetector responsivity.
    #[must_use]
    pub fn responsivity(&self) -> AmpsPerWatt {
        self.responsivity
    }

    /// Photodetector dark current.
    #[must_use]
    pub fn dark_current(&self) -> Microamps {
        self.dark_current
    }

    /// SNR produced by a received `signal` power in the presence of
    /// `crosstalk` (Eq. 4).  Returns 0 when the crosstalk exceeds the signal.
    #[must_use]
    pub fn snr(&self, signal: Microwatts, crosstalk: Microwatts) -> f64 {
        let net = signal.value() - crosstalk.value();
        if net <= 0.0 {
            return 0.0;
        }
        self.responsivity.value() * net / self.dark_current.value()
    }

    /// Optical signal power required at the photodetector to reach `snr`
    /// given `crosstalk` (the inversion of Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics if `snr` is negative.
    #[must_use]
    pub fn required_signal_power(&self, snr: f64, crosstalk: Microwatts) -> Microwatts {
        assert!(snr >= 0.0, "SNR must be non-negative");
        let net = snr * self.dark_current.value() / self.responsivity.value();
        Microwatts::new(net + crosstalk.value())
    }
}

impl Default for ReceiverModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_round_trip() {
        let rx = ReceiverModel::paper_defaults();
        assert_eq!(rx.responsivity().value(), 1.0);
        assert_eq!(rx.dark_current().value(), 4.0);
    }

    #[test]
    fn snr_and_required_power_are_inverses() {
        let rx = ReceiverModel::paper_defaults();
        for &(snr, xtalk) in &[(22.75, 0.0), (10.8, 3.0), (5.0, 12.5)] {
            let p = rx.required_signal_power(snr, Microwatts::new(xtalk));
            let back = rx.snr(p, Microwatts::new(xtalk));
            assert!((back - snr).abs() < 1e-9, "snr {snr}");
        }
    }

    #[test]
    fn snr_saturates_at_zero_when_crosstalk_dominates() {
        let rx = ReceiverModel::paper_defaults();
        assert_eq!(rx.snr(Microwatts::new(2.0), Microwatts::new(5.0)), 0.0);
    }

    #[test]
    fn higher_responsivity_needs_less_signal() {
        let weak = ReceiverModel::new(AmpsPerWatt::new(0.5), Microamps::new(4.0));
        let strong = ReceiverModel::new(AmpsPerWatt::new(1.2), Microamps::new(4.0));
        let p_weak = weak.required_signal_power(20.0, Microwatts::zero());
        let p_strong = strong.required_signal_power(20.0, Microwatts::zero());
        assert!(p_strong.value() < p_weak.value());
    }

    #[test]
    fn crosstalk_adds_linearly_to_the_requirement() {
        let rx = ReceiverModel::paper_defaults();
        let base = rx.required_signal_power(20.0, Microwatts::zero());
        let with = rx.required_signal_power(20.0, Microwatts::new(7.5));
        assert!((with.value() - base.value() - 7.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dark current")]
    fn zero_dark_current_rejected() {
        let _ = ReceiverModel::new(AmpsPerWatt::new(1.0), Microamps::new(0.0));
    }

    #[test]
    #[should_panic(expected = "SNR must be non-negative")]
    fn negative_snr_requirement_panics() {
        let rx = ReceiverModel::paper_defaults();
        let _ = rx.required_signal_power(-1.0, Microwatts::zero());
    }
}
