//! Signal-integrity mathematics for on-off-keyed (OOK) optical links.
//!
//! This crate implements Section IV-D of the DAC'17 paper:
//!
//! * the complementary error function and its inverse, written from scratch so
//!   that the workspace keeps to the pre-approved dependency set ([`math`]),
//! * the SNR ↔ BER conversions for uncoded OOK detection (Eq. 1 and Eq. 3 of
//!   the paper) and for Hamming-coded transmissions (via the BER transfer
//!   functions of [`onoc_ecc_codes::ber`]) in [`snr`],
//! * the receiver detection model of Eq. 4 translating an SNR requirement
//!   into a required optical signal power at the photodetector, given its
//!   responsivity, dark current and the worst-case crosstalk ([`detection`]).
//!
//! # Example: how much optical signal does a BER target need?
//!
//! ```
//! use onoc_ber::{detection::ReceiverModel, snr::required_snr};
//! use onoc_ecc_codes::EccScheme;
//! use onoc_units::{AmpsPerWatt, Microamps, Microwatts};
//!
//! let receiver = ReceiverModel::new(AmpsPerWatt::new(1.0), Microamps::new(4.0));
//!
//! // Uncoded at BER 1e-11 needs a much larger swing than H(7,4).
//! let snr_uncoded = required_snr(EccScheme::Uncoded, 1e-11);
//! let snr_h74 = required_snr(EccScheme::Hamming74, 1e-11);
//! let p_uncoded = receiver.required_signal_power(snr_uncoded, Microwatts::zero());
//! let p_h74 = receiver.required_signal_power(snr_h74, Microwatts::zero());
//! assert!(p_uncoded.value() > 1.9 * p_h74.value());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detection;
pub mod math;
pub mod snr;

pub use detection::ReceiverModel;
pub use math::{erf, erfc, erfc_inv, q_function, q_inv};
pub use snr::{ber_from_snr, required_snr, snr_from_ber_uncoded};
