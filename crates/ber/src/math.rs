//! Error-function numerics implemented from scratch.
//!
//! The Rust standard library does not provide `erf`/`erfc`, and this workspace
//! deliberately keeps to a small pre-approved dependency set, so the special
//! functions needed by the BER models are implemented here:
//!
//! * [`erfc`] uses the Chebyshev-fitted rational approximation of Numerical
//!   Recipes (fractional error below 1.2 × 10⁻⁷ over the whole real line),
//!   which is ample for link-budget work where device parameters are known to
//!   a few percent at best.
//! * [`erfc_inv`] inverts it by bisection followed by Newton polishing, which
//!   is robust down to arguments of 10⁻³⁰⁰ — far beyond the 10⁻¹² BER floor
//!   explored in the paper.

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// ```
/// use onoc_ber::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(erfc(5.0) < 2e-11);
/// assert!((erfc(-1.0) + erfc(1.0) - 2.0).abs() < 1e-7);
/// ```
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Chebyshev fit from Numerical Recipes in C, 2nd ed., §6.2.
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
///
/// ```
/// use onoc_ber::erf;
/// assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Inverse complementary error function: returns `x` such that `erfc(x) = y`.
///
/// # Panics
///
/// Panics unless `0 < y < 2`.
///
/// ```
/// use onoc_ber::{erfc, erfc_inv};
/// let x = erfc_inv(2e-11);
/// assert!((erfc(x) - 2e-11).abs() / 2e-11 < 1e-6);
/// assert!(x > 4.5 && x < 5.0);
/// ```
#[must_use]
pub fn erfc_inv(y: f64) -> f64 {
    assert!(y > 0.0 && y < 2.0, "erfc_inv argument must be in (0, 2)");
    if (y - 1.0).abs() < 1e-300 {
        return 0.0;
    }
    // erfc is strictly decreasing; bracket the root.
    // erfc(-30) ≈ 2, erfc(30) ≈ 0 to far beyond double precision.
    let mut lo = -30.0f64;
    let mut hi = 30.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if erfc(mid) > y {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mut x = 0.5 * (lo + hi);
    // Newton polish: d/dx erfc(x) = -2/sqrt(pi) * exp(-x^2).
    for _ in 0..4 {
        let f = erfc(x) - y;
        let dfdx = -2.0 / std::f64::consts::PI.sqrt() * (-x * x).exp();
        if dfdx.abs() < 1e-300 {
            break;
        }
        let step = f / dfdx;
        if !step.is_finite() {
            break;
        }
        x -= step;
    }
    x
}

/// Gaussian Q-function `Q(x) = 0.5·erfc(x/√2)`, the tail probability of a
/// standard normal variable.
#[must_use]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of the Q-function.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn q_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "q_inv argument must be in (0, 1)");
    std::f64::consts::SQRT_2 * erfc_inv(2.0 * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath (50 digits).
    const ERFC_TABLE: &[(f64, f64)] = &[
        (0.0, 1.0),
        (0.5, 0.479_500_122_186_953_5),
        (1.0, 0.157_299_207_050_285_13),
        (2.0, 0.004_677_734_981_063_127),
        (3.0, 2.209_049_699_858_544e-5),
        (4.0, 1.541_725_790_028_002e-8),
        (5.0, 1.537_459_794_428_035e-12),
        (6.0, 2.151_973_671_249_892e-17),
    ];

    #[test]
    fn erfc_matches_reference_table() {
        for &(x, expected) in ERFC_TABLE {
            let got = erfc(x);
            let rel = if expected == 0.0 {
                got.abs()
            } else {
                ((got - expected) / expected).abs()
            };
            assert!(rel < 2e-7, "erfc({x}) = {got}, expected {expected}");
        }
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.9, 4.2] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_limits() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(6.0) - 1.0).abs() < 1e-12);
        assert!((erf(-6.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn erfc_inv_round_trips_over_many_decades() {
        for exp in 1..=15 {
            let y = 10f64.powi(-exp);
            let x = erfc_inv(y);
            let back = erfc(x);
            assert!((back - y).abs() / y < 1e-5, "y = 1e-{exp}: back = {back}");
        }
    }

    #[test]
    fn erfc_inv_of_values_above_one_is_negative() {
        let x = erfc_inv(1.5);
        assert!(x < 0.0);
        assert!((erfc(x) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn erfc_inv_of_one_is_zero() {
        assert!(erfc_inv(1.0).abs() < 1e-9);
    }

    #[test]
    fn q_function_reference_points() {
        // Q(0) = 0.5, Q(1.2816) ≈ 0.1, Q(3.09) ≈ 1e-3.
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.281_551_6) - 0.1).abs() < 1e-4);
        assert!((q_function(3.090_232_3) - 1e-3).abs() < 1e-6);
    }

    #[test]
    fn q_inv_round_trips() {
        for &p in &[0.25, 0.1, 1e-3, 1e-6, 1e-9, 1e-12] {
            let x = q_inv(p);
            assert!((q_function(x) - p).abs() / p < 1e-5, "p = {p}");
        }
    }

    #[test]
    fn q_inv_is_monotone_decreasing_in_p() {
        assert!(q_inv(1e-12) > q_inv(1e-9));
        assert!(q_inv(1e-9) > q_inv(1e-3));
    }

    #[test]
    #[should_panic(expected = "erfc_inv argument")]
    fn erfc_inv_rejects_zero() {
        let _ = erfc_inv(0.0);
    }

    #[test]
    #[should_panic(expected = "q_inv argument")]
    fn q_inv_rejects_one() {
        let _ = q_inv(1.0);
    }
}
