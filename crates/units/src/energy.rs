//! Energy and energy-per-bit quantities (pJ, fJ, pJ/bit).

use crate::frequency::GigabitsPerSecond;
use crate::power::Milliwatts;
use crate::quantity::quantity;
use crate::time::Nanoseconds;

quantity!(
    /// Energy expressed in picojoules.
    ///
    /// ```
    /// use onoc_units::{Picojoules, Milliwatts, Nanoseconds};
    /// let e = Picojoules::from_power_and_time(Milliwatts::new(251.0), Nanoseconds::new(1.0));
    /// assert!((e.value() - 251.0).abs() < 1e-9);
    /// ```
    Picojoules,
    "pJ"
);

quantity!(
    /// Energy expressed in femtojoules.
    Femtojoules,
    "fJ"
);

quantity!(
    /// Energy efficiency expressed in picojoules per transmitted bit.
    ///
    /// The headline figures of the paper are 3.92 pJ/bit for an uncoded
    /// transmission and 3.76 pJ/bit for H(71,64) at BER = 10⁻¹¹.
    ///
    /// ```
    /// use onoc_units::{PicojoulesPerBit, Milliwatts, GigabitsPerSecond};
    /// let e = PicojoulesPerBit::from_power_and_rate(
    ///     Milliwatts::new(251.0),
    ///     GigabitsPerSecond::new(64.0),
    /// );
    /// assert!((e.value() - 3.92).abs() < 0.01);
    /// ```
    PicojoulesPerBit,
    "pJ/bit"
);

impl Picojoules {
    /// Energy dissipated by `power` over `time`.
    #[must_use]
    pub fn from_power_and_time(power: Milliwatts, time: Nanoseconds) -> Self {
        // mW × ns = pJ exactly.
        Self::new(power.value() * time.value())
    }

    /// Converts to femtojoules.
    #[must_use]
    pub fn to_femtojoules(self) -> Femtojoules {
        Femtojoules::new(self.value() * 1e3)
    }

    /// Divides by a number of bits to obtain a per-bit figure.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn per_bits(self, bits: u64) -> PicojoulesPerBit {
        assert!(bits > 0, "cannot divide energy by zero bits");
        PicojoulesPerBit::new(self.value() / bits as f64)
    }
}

impl Femtojoules {
    /// Converts to picojoules.
    #[must_use]
    pub fn to_picojoules(self) -> Picojoules {
        Picojoules::new(self.value() * 1e-3)
    }
}

impl PicojoulesPerBit {
    /// Energy per bit of a transmitter dissipating `power` while delivering
    /// payload at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    #[must_use]
    pub fn from_power_and_rate(power: Milliwatts, rate: GigabitsPerSecond) -> Self {
        assert!(rate.value() > 0.0, "data rate must be positive");
        // mW / (Gb/s) = pJ/bit exactly.
        Self::new(power.value() / rate.value())
    }
}

impl From<Femtojoules> for Picojoules {
    fn from(value: Femtojoules) -> Self {
        value.to_picojoules()
    }
}

impl From<Picojoules> for Femtojoules {
    fn from(value: Picojoules) -> Self {
        value.to_femtojoules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_yields_picojoules() {
        let e = Picojoules::from_power_and_time(Milliwatts::new(15.7), Nanoseconds::new(1.75));
        assert!((e.value() - 27.475).abs() < 1e-9);
    }

    #[test]
    fn femto_pico_round_trip() {
        let e = Picojoules::new(3.92);
        assert!((Picojoules::from(Femtojoules::from(e)).value() - 3.92).abs() < 1e-12);
    }

    #[test]
    fn per_bits_division() {
        let word_energy =
            Picojoules::from_power_and_time(Milliwatts::new(251.0), Nanoseconds::new(1.0));
        let per_bit = word_energy.per_bits(64);
        assert!((per_bit.value() - 3.921_875).abs() < 1e-6);
    }

    #[test]
    fn paper_uncoded_energy_per_bit_matches() {
        let e = PicojoulesPerBit::from_power_and_rate(
            Milliwatts::new(251.0),
            GigabitsPerSecond::new(64.0),
        );
        assert!((e.value() - 3.92).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "zero bits")]
    fn per_zero_bits_panics() {
        let _ = Picojoules::new(1.0).per_bits(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = PicojoulesPerBit::from_power_and_rate(
            Milliwatts::new(1.0),
            GigabitsPerSecond::new(0.0),
        );
    }
}
