//! Temperature quantities used by the VCSEL thermal-efficiency model.

use crate::quantity::quantity;

quantity!(
    /// Temperature in degrees Celsius.
    ///
    /// ```
    /// use onoc_units::Celsius;
    /// let ambient = Celsius::new(25.0);
    /// let self_heating = Celsius::new(40.0);
    /// assert!((ambient + self_heating).value() > 60.0);
    /// ```
    Celsius,
    "degC",
    allow_negative
);

quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);

impl Celsius {
    /// Converts to kelvin.
    ///
    /// # Panics
    ///
    /// Panics if the temperature is below absolute zero.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        let k = self.value() + 273.15;
        assert!(k >= 0.0, "temperature below absolute zero");
        Kelvin::new(k)
    }
}

impl Kelvin {
    /// Converts to degrees Celsius.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.value() - 273.15)
    }
}

impl From<Celsius> for Kelvin {
    fn from(value: Celsius) -> Self {
        value.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    fn from(value: Kelvin) -> Self {
        value.to_celsius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Celsius::new(85.0);
        assert!((Celsius::from(Kelvin::from(t)).value() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn zero_celsius_is_273_kelvin() {
        assert!((Celsius::new(0.0).to_kelvin().value() - 273.15).abs() < 1e-12);
    }

    #[test]
    fn negative_celsius_allowed() {
        assert!((Celsius::new(-40.0).to_kelvin().value() - 233.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "absolute zero")]
    fn below_absolute_zero_rejected() {
        let _ = Celsius::new(-300.0).to_kelvin();
    }
}
