//! Temperature quantities used by the VCSEL thermal-efficiency model and the
//! micro-ring thermal-drift model.
//!
//! # Absolute vs. relative temperatures
//!
//! [`Celsius`] and [`Kelvin`] are *absolute* temperatures; [`KelvinDelta`] is
//! a *temperature difference*.  Drift math (resonance shift per kelvin,
//! heater compensation) must operate on differences, so the convention is:
//!
//! * subtract two absolute temperatures with [`Celsius::delta_to`] /
//!   [`Kelvin::delta_to`], which yield a [`KelvinDelta`];
//! * move an absolute temperature by a difference with
//!   [`Celsius::offset_by`] or the `Celsius + KelvinDelta` operator.
//!
//! A 1 °C step equals a 1 K step, so the same delta type serves both scales.
//! (The legacy `Celsius + Celsius` operator from the quantity macro is kept
//! for the VCSEL self-heating model, which composes heating *contributions*
//! expressed in °C.)

use crate::quantity::quantity;

quantity!(
    /// Temperature in degrees Celsius.
    ///
    /// ```
    /// use onoc_units::Celsius;
    /// let ambient = Celsius::new(25.0);
    /// let self_heating = Celsius::new(40.0);
    /// assert!((ambient + self_heating).value() > 60.0);
    /// ```
    Celsius,
    "degC",
    allow_negative
);

quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);

quantity!(
    /// A temperature *difference* in kelvin (equivalently, in °C steps).
    ///
    /// ```
    /// use onoc_units::{Celsius, KelvinDelta};
    /// let ambient = Celsius::new(25.0);
    /// let hotspot = Celsius::new(85.0);
    /// let rise = hotspot.delta_to(ambient);
    /// assert!((rise.value() - 60.0).abs() < 1e-12);
    /// assert!((ambient.offset_by(rise).value() - 85.0).abs() < 1e-12);
    /// ```
    KelvinDelta,
    "K",
    allow_negative
);

impl KelvinDelta {
    /// Magnitude of the difference.
    #[must_use]
    pub fn abs(self) -> Self {
        Self::new(self.value().abs())
    }
}

impl Celsius {
    /// Difference `self − reference` as a [`KelvinDelta`].
    #[must_use]
    pub fn delta_to(self, reference: Celsius) -> KelvinDelta {
        KelvinDelta::new(self.value() - reference.value())
    }

    /// This temperature moved by `delta`.
    #[must_use]
    pub fn offset_by(self, delta: KelvinDelta) -> Celsius {
        Celsius::new(self.value() + delta.value())
    }
}

impl std::ops::Add<KelvinDelta> for Celsius {
    type Output = Celsius;
    fn add(self, rhs: KelvinDelta) -> Celsius {
        self.offset_by(rhs)
    }
}

impl std::ops::Sub<KelvinDelta> for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: KelvinDelta) -> Celsius {
        Celsius::new(self.value() - rhs.value())
    }
}

impl Kelvin {
    /// Difference `self − reference` as a [`KelvinDelta`].
    #[must_use]
    pub fn delta_to(self, reference: Kelvin) -> KelvinDelta {
        KelvinDelta::new(self.value() - reference.value())
    }

    /// This temperature moved by `delta`.
    ///
    /// # Panics
    ///
    /// Panics if the result would be below absolute zero.
    #[must_use]
    pub fn offset_by(self, delta: KelvinDelta) -> Kelvin {
        Kelvin::new(self.value() + delta.value())
    }
}

impl std::ops::Add<KelvinDelta> for Kelvin {
    type Output = Kelvin;
    fn add(self, rhs: KelvinDelta) -> Kelvin {
        self.offset_by(rhs)
    }
}

impl Celsius {
    /// Converts to kelvin.
    ///
    /// # Panics
    ///
    /// Panics if the temperature is below absolute zero.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        let k = self.value() + 273.15;
        assert!(k >= 0.0, "temperature below absolute zero");
        Kelvin::new(k)
    }
}

impl Kelvin {
    /// Converts to degrees Celsius.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.value() - 273.15)
    }
}

impl From<Celsius> for Kelvin {
    fn from(value: Celsius) -> Self {
        value.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    fn from(value: Kelvin) -> Self {
        value.to_celsius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Celsius::new(85.0);
        assert!((Celsius::from(Kelvin::from(t)).value() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn zero_celsius_is_273_kelvin() {
        assert!((Celsius::new(0.0).to_kelvin().value() - 273.15).abs() < 1e-12);
    }

    #[test]
    fn negative_celsius_allowed() {
        assert!((Celsius::new(-40.0).to_kelvin().value() - 233.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "absolute zero")]
    fn below_absolute_zero_rejected() {
        let _ = Celsius::new(-300.0).to_kelvin();
    }

    #[test]
    fn deltas_are_signed_and_consistent_across_scales() {
        let cool = Celsius::new(25.0);
        let hot = Celsius::new(85.0);
        assert!((hot.delta_to(cool).value() - 60.0).abs() < 1e-12);
        assert!((cool.delta_to(hot).value() + 60.0).abs() < 1e-12);
        assert!((cool.delta_to(hot).abs().value() - 60.0).abs() < 1e-12);
        // The same delta applies in kelvin.
        let k = hot.to_kelvin().delta_to(cool.to_kelvin());
        assert!((k.value() - 60.0).abs() < 1e-12);
        assert!((cool.to_kelvin().offset_by(k).to_celsius().value() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn delta_operators_round_trip() {
        let t = Celsius::new(25.0);
        let delta = KelvinDelta::new(-12.5);
        assert!(((t + delta).value() - 12.5).abs() < 1e-12);
        assert!(((t - delta).value() - 37.5).abs() < 1e-12);
        assert!(((t.to_kelvin() + KelvinDelta::new(10.0)).value() - 308.15).abs() < 1e-9);
    }
}
