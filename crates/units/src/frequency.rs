//! Frequency and data-rate quantities (Hz, GHz, Gb/s).

use crate::quantity::quantity;
use crate::time::Nanoseconds;

quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

quantity!(
    /// Frequency in gigahertz.
    ///
    /// The IP cores of the paper are clocked at F_IP = 1 GHz and the optical
    /// modulation speed is F_mod = 10 GHz.
    ///
    /// ```
    /// use onoc_units::Gigahertz;
    /// let f_ip = Gigahertz::new(1.0);
    /// assert!((f_ip.period().value() - 1.0).abs() < 1e-12);
    /// ```
    Gigahertz,
    "GHz"
);

quantity!(
    /// Serial data rate in gigabits per second.
    ///
    /// With on-off-keying modulation, a modulation frequency of 10 GHz carries
    /// 10 Gb/s on a single wavelength.
    ///
    /// ```
    /// use onoc_units::GigabitsPerSecond;
    /// let per_wavelength = GigabitsPerSecond::new(10.0);
    /// let channel = per_wavelength * 16.0;
    /// assert!((channel.value() - 160.0).abs() < 1e-12);
    /// ```
    GigabitsPerSecond,
    "Gb/s"
);

impl Hertz {
    /// Converts to gigahertz.
    #[must_use]
    pub fn to_gigahertz(self) -> Gigahertz {
        Gigahertz::new(self.value() * 1e-9)
    }
}

impl Gigahertz {
    /// Converts to hertz.
    #[must_use]
    pub fn to_hertz(self) -> Hertz {
        Hertz::new(self.value() * 1e9)
    }

    /// Clock period corresponding to this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Nanoseconds {
        assert!(
            self.value() > 0.0,
            "cannot take the period of a zero frequency"
        );
        Nanoseconds::new(1.0 / self.value())
    }

    /// OOK data rate obtained by modulating at this frequency (1 bit/cycle).
    #[must_use]
    pub fn to_ook_rate(self) -> GigabitsPerSecond {
        GigabitsPerSecond::new(self.value())
    }
}

impl GigabitsPerSecond {
    /// Time needed to serially transmit `bits` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    #[must_use]
    pub fn transmission_time(self, bits: u64) -> Nanoseconds {
        assert!(self.value() > 0.0, "data rate must be positive");
        Nanoseconds::new(bits as f64 / self.value())
    }
}

impl From<Gigahertz> for Hertz {
    fn from(value: Gigahertz) -> Self {
        value.to_hertz()
    }
}

impl From<Hertz> for Gigahertz {
    fn from(value: Hertz) -> Self {
        value.to_gigahertz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hertz_gigahertz_round_trip() {
        let f = Gigahertz::new(10.0);
        assert!((Gigahertz::from(Hertz::from(f)).value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn period_of_one_gigahertz_is_one_nanosecond() {
        assert!((Gigahertz::new(1.0).period().value() - 1.0).abs() < 1e-12);
        assert!((Gigahertz::new(10.0).period().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ook_rate_equals_modulation_frequency() {
        assert!((Gigahertz::new(10.0).to_ook_rate().value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn transmission_time_for_hamming_block() {
        // 112 bits (16 × H(7,4) codewords) at 10 Gb/s take 11.2 ns.
        let t = GigabitsPerSecond::new(10.0).transmission_time(112);
        assert!((t.value() - 11.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn period_of_zero_panics() {
        let _ = Gigahertz::new(0.0).period();
    }
}
