//! Electrical and optical power quantities (W, mW, µW, nW).
//!
//! Laser electrical power budgets are naturally expressed in milliwatts, while
//! on-chip optical signal levels at the photodetector are in the microwatt
//! range and leakage of the 28 nm interface blocks is reported in nanowatts.
//! Keeping them as distinct types prevents the classic thousand-fold mistakes.

use crate::quantity::quantity;
use crate::ratio::{Decibels, LinearRatio};

quantity!(
    /// Power expressed in watts.
    ///
    /// ```
    /// use onoc_units::{Watts, Milliwatts};
    /// let total = Watts::from(Milliwatts::new(251.0) * 12.0);
    /// assert!((total.value() - 3.012).abs() < 1e-12);
    /// ```
    Watts,
    "W"
);

quantity!(
    /// Power expressed in milliwatts.
    ///
    /// This is the natural unit for per-wavelength channel power in the paper
    /// (e.g. P_laser = 14.3 mW for an uncoded transmission at BER = 10⁻¹¹).
    ///
    /// ```
    /// use onoc_units::Milliwatts;
    /// let laser = Milliwatts::new(14.35);
    /// let ring = Milliwatts::new(1.36);
    /// assert!(((laser + ring).value() - 15.71).abs() < 1e-9);
    /// ```
    Milliwatts,
    "mW"
);

quantity!(
    /// Power expressed in microwatts.
    ///
    /// Optical signal levels at the photodetector and the laser optical output
    /// power (OP_laser, capped at 700 µW in the paper) live in this range.
    ///
    /// ```
    /// use onoc_units::{Microwatts, Decibels};
    /// let emitted = Microwatts::new(700.0);
    /// let received = emitted.attenuated_by(Decibels::new(3.0));
    /// assert!((received.value() - 350.7).abs() < 1.0);
    /// ```
    Microwatts,
    "uW"
);

quantity!(
    /// Power expressed in nanowatts.
    ///
    /// Static (leakage) power of the synthesized interface blocks is reported
    /// in nanowatts in Table I of the paper.
    ///
    /// ```
    /// use onoc_units::{Nanowatts, Microwatts};
    /// let leakage = Nanowatts::new(17.7);
    /// assert!((Microwatts::from(leakage).value() - 0.0177).abs() < 1e-12);
    /// ```
    Nanowatts,
    "nW"
);

impl Watts {
    /// Converts to milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts::new(self.value() * 1e3)
    }
}

impl Milliwatts {
    /// Converts to watts.
    #[must_use]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.value() * 1e-3)
    }

    /// Converts to microwatts.
    #[must_use]
    pub fn to_microwatts(self) -> Microwatts {
        Microwatts::new(self.value() * 1e3)
    }

    /// Expresses this power in dBm (decibels referenced to 1 mW).
    ///
    /// # Panics
    ///
    /// Panics if the power is zero (−∞ dBm is not representable).
    #[must_use]
    pub fn to_dbm(self) -> Decibels {
        assert!(self.value() > 0.0, "cannot express zero power in dBm");
        Decibels::new(10.0 * self.value().log10())
    }

    /// Builds a power value from a dBm figure.
    #[must_use]
    pub fn from_dbm(dbm: Decibels) -> Self {
        Self::new(10f64.powf(dbm.value() / 10.0))
    }

    /// Applies a loss (positive dB value attenuates).
    #[must_use]
    pub fn attenuated_by(self, loss: Decibels) -> Self {
        Self::new(self.value() * loss.to_attenuation().value())
    }

    /// Applies a gain expressed as a linear ratio.
    #[must_use]
    pub fn scaled_by(self, ratio: LinearRatio) -> Self {
        Self::new(self.value() * ratio.value())
    }
}

impl Microwatts {
    /// Converts to milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts::new(self.value() * 1e-3)
    }

    /// Expresses this power in dBm.
    ///
    /// # Panics
    ///
    /// Panics if the power is zero.
    #[must_use]
    pub fn to_dbm(self) -> Decibels {
        self.to_milliwatts().to_dbm()
    }

    /// Builds a power value from a dBm figure.
    #[must_use]
    pub fn from_dbm(dbm: Decibels) -> Self {
        Milliwatts::from_dbm(dbm).to_microwatts()
    }

    /// Applies a loss (positive dB value attenuates).
    #[must_use]
    pub fn attenuated_by(self, loss: Decibels) -> Self {
        Self::new(self.value() * loss.to_attenuation().value())
    }

    /// Applies a gain expressed as a linear ratio.
    #[must_use]
    pub fn scaled_by(self, ratio: LinearRatio) -> Self {
        Self::new(self.value() * ratio.value())
    }
}

impl Nanowatts {
    /// Converts to microwatts.
    #[must_use]
    pub fn to_microwatts(self) -> Microwatts {
        Microwatts::new(self.value() * 1e-3)
    }
}

impl From<Milliwatts> for Watts {
    fn from(value: Milliwatts) -> Self {
        value.to_watts()
    }
}

impl From<Watts> for Milliwatts {
    fn from(value: Watts) -> Self {
        value.to_milliwatts()
    }
}

impl From<Milliwatts> for Microwatts {
    fn from(value: Milliwatts) -> Self {
        value.to_microwatts()
    }
}

impl From<Microwatts> for Milliwatts {
    fn from(value: Microwatts) -> Self {
        value.to_milliwatts()
    }
}

impl From<Nanowatts> for Microwatts {
    fn from(value: Nanowatts) -> Self {
        value.to_microwatts()
    }
}

impl From<Nanowatts> for Milliwatts {
    fn from(value: Nanowatts) -> Self {
        value.to_microwatts().to_milliwatts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milliwatt_microwatt_round_trip() {
        let p = Milliwatts::new(14.3);
        let back = Milliwatts::from(Microwatts::from(p));
        assert!((back.value() - 14.3).abs() < 1e-12);
    }

    #[test]
    fn watts_round_trip() {
        let p = Watts::new(0.251);
        assert!((Watts::from(Milliwatts::from(p)).value() - 0.251).abs() < 1e-12);
    }

    #[test]
    fn dbm_conversion_matches_reference_points() {
        assert!((Milliwatts::new(1.0).to_dbm().value()).abs() < 1e-12);
        assert!((Milliwatts::new(10.0).to_dbm().value() - 10.0).abs() < 1e-12);
        let p = Microwatts::new(700.0);
        // 0.7 mW ≈ -1.549 dBm
        assert!((p.to_dbm().value() + 1.549).abs() < 1e-2);
    }

    #[test]
    fn from_dbm_inverts_to_dbm() {
        let p = Microwatts::new(91.0);
        let round = Microwatts::from_dbm(p.to_dbm());
        assert!((round.value() - 91.0).abs() < 1e-9);
    }

    #[test]
    fn attenuation_by_3db_roughly_halves() {
        let p = Microwatts::new(100.0).attenuated_by(Decibels::new(3.0));
        assert!((p.value() - 50.12).abs() < 0.05);
    }

    #[test]
    fn attenuation_by_zero_db_is_identity() {
        let p = Microwatts::new(123.4).attenuated_by(Decibels::new(0.0));
        assert!((p.value() - 123.4).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Milliwatts = [1.36, 14.35, 0.0096]
            .iter()
            .map(|&v| Milliwatts::new(v))
            .sum();
        assert!((total.value() - 15.7196).abs() < 1e-9);
        assert!((total * 16.0).value() > 251.0);
    }

    #[test]
    fn min_max_zero() {
        let a = Milliwatts::new(1.0);
        let b = Milliwatts::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Milliwatts::zero().is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = Milliwatts::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "zero power")]
    fn zero_dbm_conversion_panics() {
        let _ = Milliwatts::zero().to_dbm();
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Milliwatts::new(1.5).to_string(), "1.5 mW");
        assert_eq!(format!("{:.2}", Microwatts::new(91.456)), "91.46 uW");
    }
}
