//! Time quantities: clock periods and serialisation delays.

use crate::quantity::quantity;

quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);

quantity!(
    /// Time in nanoseconds (the IP-level clock period is 1 ns in the paper).
    ///
    /// ```
    /// use onoc_units::Nanoseconds;
    /// let uncoded = Nanoseconds::new(6.4);
    /// let hamming74 = uncoded * 1.75;
    /// assert!((hamming74.value() - 11.2).abs() < 1e-9);
    /// ```
    Nanoseconds,
    "ns"
);

quantity!(
    /// Time in picoseconds (critical-path figures of Table I).
    Picoseconds,
    "ps"
);

impl Seconds {
    /// Converts to nanoseconds.
    #[must_use]
    pub fn to_nanoseconds(self) -> Nanoseconds {
        Nanoseconds::new(self.value() * 1e9)
    }
}

impl Nanoseconds {
    /// Converts to seconds.
    #[must_use]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.value() * 1e-9)
    }

    /// Converts to picoseconds.
    #[must_use]
    pub fn to_picoseconds(self) -> Picoseconds {
        Picoseconds::new(self.value() * 1e3)
    }
}

impl Picoseconds {
    /// Converts to nanoseconds.
    #[must_use]
    pub fn to_nanoseconds(self) -> Nanoseconds {
        Nanoseconds::new(self.value() * 1e-3)
    }

    /// Maximum clock frequency that meets this critical path, in GHz.
    ///
    /// # Panics
    ///
    /// Panics if the delay is zero.
    #[must_use]
    pub fn max_frequency(self) -> crate::Gigahertz {
        assert!(self.value() > 0.0, "critical path must be positive");
        crate::Gigahertz::new(1e3 / self.value())
    }
}

impl From<Nanoseconds> for Seconds {
    fn from(value: Nanoseconds) -> Self {
        value.to_seconds()
    }
}

impl From<Seconds> for Nanoseconds {
    fn from(value: Seconds) -> Self {
        value.to_nanoseconds()
    }
}

impl From<Picoseconds> for Nanoseconds {
    fn from(value: Picoseconds) -> Self {
        value.to_nanoseconds()
    }
}

impl From<Nanoseconds> for Picoseconds {
    fn from(value: Nanoseconds) -> Self {
        value.to_picoseconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_nanoseconds_round_trip() {
        let t = Nanoseconds::new(11.2);
        assert!((Nanoseconds::from(Seconds::from(t)).value() - 11.2).abs() < 1e-9);
    }

    #[test]
    fn picoseconds_round_trip() {
        let t = Picoseconds::new(210.0);
        assert!((Picoseconds::from(Nanoseconds::from(t)).value() - 210.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_frequency() {
        // A 70 ps serializer stage supports well above 10 GHz.
        let f = Picoseconds::new(70.0).max_frequency();
        assert!(f.value() > 10.0);
        // A 570 ps decoder path still meets 1 GHz.
        let f = Picoseconds::new(570.0).max_frequency();
        assert!(f.value() > 1.0 && f.value() < 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_critical_path_panics() {
        let _ = Picoseconds::new(0.0).max_frequency();
    }
}
