//! Length quantities: waveguide lengths (cm), device footprints (µm) and
//! optical wavelengths (nm).

use crate::quantity::quantity;

quantity!(
    /// Length in centimetres.
    ///
    /// The MWSR waveguide of the paper is 6 cm long.
    Centimeters,
    "cm"
);

quantity!(
    /// Length in micrometres.
    Micrometers,
    "um"
);

quantity!(
    /// Length in nanometres; used for optical wavelengths around 1520–1560 nm
    /// and for micro-ring resonance shifts of a few tens of picometres.
    ///
    /// ```
    /// use onoc_units::Nanometers;
    /// let lambda_0 = Nanometers::new(1520.25);
    /// let shift = Nanometers::new(0.02);
    /// assert!(((lambda_0 + shift).value() - 1520.27).abs() < 1e-9);
    /// ```
    Nanometers,
    "nm"
);

impl Centimeters {
    /// Converts to micrometres.
    #[must_use]
    pub fn to_micrometers(self) -> Micrometers {
        Micrometers::new(self.value() * 1e4)
    }
}

impl Micrometers {
    /// Converts to centimetres.
    #[must_use]
    pub fn to_centimeters(self) -> Centimeters {
        Centimeters::new(self.value() * 1e-4)
    }

    /// Converts to nanometres.
    #[must_use]
    pub fn to_nanometers(self) -> Nanometers {
        Nanometers::new(self.value() * 1e3)
    }
}

impl Nanometers {
    /// Converts to micrometres.
    #[must_use]
    pub fn to_micrometers(self) -> Micrometers {
        Micrometers::new(self.value() * 1e-3)
    }

    /// Optical frequency (in GHz) of light at this vacuum wavelength.
    ///
    /// # Panics
    ///
    /// Panics if the wavelength is zero.
    #[must_use]
    pub fn to_optical_frequency_ghz(self) -> crate::Gigahertz {
        assert!(self.value() > 0.0, "wavelength must be positive");
        const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;
        let lambda_m = self.value() * 1e-9;
        crate::Gigahertz::new(SPEED_OF_LIGHT_M_PER_S / lambda_m / 1e9)
    }
}

impl From<Centimeters> for Micrometers {
    fn from(value: Centimeters) -> Self {
        value.to_micrometers()
    }
}

impl From<Micrometers> for Centimeters {
    fn from(value: Micrometers) -> Self {
        value.to_centimeters()
    }
}

impl From<Micrometers> for Nanometers {
    fn from(value: Micrometers) -> Self {
        value.to_nanometers()
    }
}

impl From<Nanometers> for Micrometers {
    fn from(value: Nanometers) -> Self {
        value.to_micrometers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centimeter_micrometer_round_trip() {
        let l = Centimeters::new(6.0);
        assert!((Centimeters::from(Micrometers::from(l)).value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn nanometer_micrometer_round_trip() {
        let l = Nanometers::new(1520.25);
        assert!((Nanometers::from(Micrometers::from(l)).value() - 1520.25).abs() < 1e-9);
    }

    #[test]
    fn c_band_wavelength_frequency() {
        // 1550 nm is roughly 193.4 THz.
        let f = Nanometers::new(1550.0).to_optical_frequency_ghz();
        assert!((f.value() - 193_414.0).abs() < 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_wavelength_frequency_panics() {
        let _ = Nanometers::new(0.0).to_optical_frequency_ghz();
    }
}
