//! Silicon area quantities for the synthesized interface blocks.

use crate::quantity::quantity;

quantity!(
    /// Area in square micrometres (the unit of Table I of the paper).
    ///
    /// ```
    /// use onoc_units::SquareMicrometers;
    /// let transmitter = SquareMicrometers::new(2013.0);
    /// let receiver = SquareMicrometers::new(3050.0);
    /// assert!((transmitter + receiver).value() > 5000.0);
    /// ```
    SquareMicrometers,
    "um^2"
);

impl SquareMicrometers {
    /// Converts to square millimetres.
    #[must_use]
    pub fn to_square_millimeters(self) -> f64 {
        self.value() * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_area_is_small_in_mm2() {
        let total = SquareMicrometers::new(2013.0) + SquareMicrometers::new(3050.0);
        assert!(total.to_square_millimeters() < 0.01);
    }

    #[test]
    fn area_scaling() {
        // 16 parallel H(7,4) coders.
        let one = SquareMicrometers::new(551.0 / 16.0);
        assert!(((one * 16.0).value() - 551.0).abs() < 1e-9);
    }
}
