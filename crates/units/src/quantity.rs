//! Internal helper macro generating scalar physical-quantity newtypes.
//!
//! Every quantity in this crate is a thin wrapper around an `f64` with a unit
//! attached in the type.  The macro generates the common boilerplate: a
//! validated constructor, accessor, `Display`, ordering, scaling by a bare
//! `f64`, and addition/subtraction with itself.  Unit-specific conversions
//! (e.g. mW ↔ µW, dB ↔ linear) are written by hand in the individual modules.

/// Generates a scalar quantity newtype.
///
/// * `$name` — type name.
/// * `$unit` — unit suffix used by `Display`.
/// * `$doc` — doc string for the type.
/// * The optional `allow_negative` token relaxes the constructor so that
///   negative values are accepted (needed for temperatures and decibel gains).
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        quantity!(@impl $(#[$meta])* $name, $unit, false);
    };
    ($(#[$meta:meta])* $name:ident, $unit:literal, allow_negative) => {
        quantity!(@impl $(#[$meta])* $name, $unit, true);
    };
    (@impl $(#[$meta:meta])* $name:ident, $unit:literal, $allow_negative:expr) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        pub struct $name(f64);

        impl $name {
            /// Creates a new value of this quantity.
            ///
            /// # Panics
            ///
            /// Panics if the value is not finite, or if it is negative and the
            /// quantity does not admit negative values.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(
                    value.is_finite(),
                    concat!(stringify!($name), " must be finite")
                );
                if !$allow_negative {
                    assert!(
                        value >= 0.0,
                        concat!(stringify!($name), " must be non-negative")
                    );
                }
                Self(value)
            }

            /// Zero value of this quantity.
            #[must_use]
            pub fn zero() -> Self {
                Self(0.0)
            }

            /// Returns the raw numeric value in the unit named by the type.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 {
                    self
                } else {
                    other
                }
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 {
                    self
                } else {
                    other
                }
            }

            /// Returns `true` when the value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl std::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl std::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl std::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

pub(crate) use quantity;
