//! Dimensionless ratios: decibels, linear ratios and per-length attenuation.

use crate::length::Centimeters;
use crate::quantity::quantity;

quantity!(
    /// A dimensionless ratio in linear scale (power ratio, not amplitude).
    ///
    /// ```
    /// use onoc_units::{LinearRatio, Decibels};
    /// let half = LinearRatio::new(0.5);
    /// assert!((half.to_decibels().value() + 3.0103).abs() < 1e-3);
    /// ```
    LinearRatio,
    "x"
);

quantity!(
    /// A ratio expressed in decibels (10·log₁₀ of a power ratio).
    ///
    /// Positive values denote losses when passed to
    /// [`Microwatts::attenuated_by`](crate::Microwatts::attenuated_by) and
    /// gains when used via [`Decibels::to_gain`].
    ///
    /// ```
    /// use onoc_units::Decibels;
    /// let extinction_ratio = Decibels::new(6.9);
    /// assert!((extinction_ratio.to_attenuation().value() - 0.2042).abs() < 1e-3);
    /// ```
    Decibels,
    "dB",
    allow_negative
);

quantity!(
    /// Propagation loss per unit length, in dB/cm.
    ///
    /// The paper assumes 0.274 dB/cm silicon waveguide loss (ref. \[17\]).
    ///
    /// ```
    /// use onoc_units::{DecibelsPerCentimeter, Centimeters};
    /// let loss = DecibelsPerCentimeter::new(0.274);
    /// let total = loss.over(Centimeters::new(6.0));
    /// assert!((total.value() - 1.644).abs() < 1e-9);
    /// ```
    DecibelsPerCentimeter,
    "dB/cm"
);

impl LinearRatio {
    /// Identity ratio (1.0, i.e. 0 dB).
    #[must_use]
    pub fn unity() -> Self {
        Self::new(1.0)
    }

    /// Converts this linear power ratio to decibels.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is zero.
    #[must_use]
    pub fn to_decibels(self) -> Decibels {
        assert!(self.value() > 0.0, "cannot express a zero ratio in dB");
        Decibels::new(10.0 * self.value().log10())
    }
}

impl std::ops::Mul for LinearRatio {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(self.value() * rhs.value())
    }
}

impl std::iter::Product for LinearRatio {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::unity(), |acc, r| acc * r)
    }
}

impl Decibels {
    /// Interprets the dB value as an attenuation and returns the resulting
    /// linear transmission factor `10^(-dB/10)` (≤ 1 for positive dB).
    #[must_use]
    pub fn to_attenuation(self) -> LinearRatio {
        LinearRatio::new(10f64.powf(-self.value() / 10.0))
    }

    /// Interprets the dB value as a gain and returns `10^(dB/10)`.
    #[must_use]
    pub fn to_gain(self) -> LinearRatio {
        LinearRatio::new(10f64.powf(self.value() / 10.0))
    }

    /// Builds a dB figure from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    #[must_use]
    pub fn from_ratio(ratio: LinearRatio) -> Self {
        ratio.to_decibels()
    }
}

impl DecibelsPerCentimeter {
    /// Total loss accumulated over a propagation `length`.
    #[must_use]
    pub fn over(self, length: Centimeters) -> Decibels {
        Decibels::new(self.value() * length.value())
    }
}

impl From<LinearRatio> for Decibels {
    fn from(value: LinearRatio) -> Self {
        value.to_decibels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_attenuation_reference_points() {
        assert!((Decibels::new(0.0).to_attenuation().value() - 1.0).abs() < 1e-12);
        assert!((Decibels::new(10.0).to_attenuation().value() - 0.1).abs() < 1e-12);
        assert!((Decibels::new(3.0).to_attenuation().value() - 0.5012).abs() < 1e-3);
    }

    #[test]
    fn gain_is_reciprocal_of_attenuation() {
        let db = Decibels::new(6.9);
        let product = db.to_gain().value() * db.to_attenuation().value();
        assert!((product - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_db_is_a_gain_when_attenuating() {
        let amplified = Decibels::new(-3.0).to_attenuation();
        assert!(amplified.value() > 1.0);
    }

    #[test]
    fn ratio_db_round_trip() {
        let r = LinearRatio::new(0.2042);
        let back = Decibels::from(r).to_attenuation();
        // to_attenuation inverts the sign, so compose with from_ratio instead.
        assert!((back.value() - 1.0 / 0.2042).abs() / (1.0 / 0.2042) < 1e-9);
        let direct = Decibels::from_ratio(r).to_gain();
        assert!((direct.value() - 0.2042).abs() < 1e-9);
    }

    #[test]
    fn ratio_product() {
        let total: LinearRatio = [0.5, 0.5, 2.0]
            .iter()
            .map(|&v| LinearRatio::new(v))
            .product();
        assert!((total.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn waveguide_loss_of_the_paper() {
        let per_cm = DecibelsPerCentimeter::new(0.274);
        let loss = per_cm.over(Centimeters::new(6.0));
        assert!((loss.value() - 1.644).abs() < 1e-9);
        // 1.644 dB ≈ 68.5 % transmission
        assert!((loss.to_attenuation().value() - 0.6853).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "zero ratio")]
    fn zero_ratio_to_db_panics() {
        let _ = LinearRatio::new(0.0).to_decibels();
    }

    #[test]
    fn db_sum_behaves_like_cascade() {
        let cascade = Decibels::new(1.644) + Decibels::new(6.9);
        let direct = Decibels::new(1.644).to_attenuation() * Decibels::new(6.9).to_attenuation();
        assert!((cascade.to_attenuation().value() - direct.value()).abs() < 1e-12);
    }
}
