//! Deterministic fork/join helpers shared across the workspace.
//!
//! The sweep binaries of `onoc-bench` and the many-ONI epoch loops of
//! `onoc-sim` both need the same primitive: evaluate independent work items
//! on a handful of `std::thread` workers and merge the results back **in
//! input order**, so the parallel run is bit-identical to the serial one.
//! This crate holds that primitive at the bottom of the dependency graph,
//! where both the simulator and the benchmark harness can reach it without
//! depending on each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use onoc_telemetry::{RecorderHandle, TelemetryEvent};

/// Maps `f` over `items` in parallel: the slice is split into contiguous
/// chunks, one `std::thread` scope worker per chunk, and the results are
/// merged back **in input order** — the output is indistinguishable from a
/// serial `items.iter().map(f).collect()`, just faster.
///
/// `shards` is clamped to `[1, items.len()]`; pass
/// [`std::thread::available_parallelism`] (or [`default_shards`]) for one
/// shard per core.
pub fn parallel_map<T, R, F>(items: &[T], shards: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_traced(items, shards, f, &RecorderHandle::none(), "parallel_map")
}

/// [`parallel_map`] with per-shard telemetry: each worker emits one
/// [`TelemetryEvent::ShardCompleted`] (tagged with `label`) carrying its
/// item count and wall-clock duration.
///
/// Shard events are wall-clock data and their *count* depends on the shard
/// split, so recorders must keep them out of deterministic aggregates (the
/// `onoc-telemetry` registry recorder already does).  The mapped output
/// itself stays bit-identical to the serial run regardless of recorder.
pub fn parallel_map_traced<T, R, F>(
    items: &[T],
    shards: usize,
    f: F,
    recorder: &RecorderHandle,
    label: &str,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let shards = shards.clamp(1, items.len());
    let chunk_size = items.len().div_ceil(shards);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(shard, chunk)| {
                let recorder = recorder.clone();
                scope.spawn(move || {
                    // onoc-lint: allow(D002, shard wall time feeds ShardCompleted telemetry only; never a RunReport)
                    let started = std::time::Instant::now();
                    let results = chunk.iter().map(f).collect::<Vec<R>>();
                    recorder.emit(|| TelemetryEvent::ShardCompleted {
                        label: label.to_owned(),
                        shard: shard as u64,
                        items: chunk.len() as u64,
                        wall_micros: u64::try_from(started.elapsed().as_micros())
                            .unwrap_or(u64::MAX),
                    });
                    results
                })
            })
            .collect();
        // Joining in spawn order is the ordered merge: chunk i's results
        // land before chunk i+1's.
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("sweep worker panicked"))
            .collect()
    })
}

/// The shard count the sweep binaries and the simulator use by default: one
/// per available core.
#[must_use]
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for shards in [1, 2, 3, 8, 97, 200] {
            assert_eq!(
                parallel_map(&items, shards, |&x| x * x),
                expected,
                "{shards} shards"
            );
        }
        assert!(parallel_map(&[] as &[u64], 4, |&x| x).is_empty());
        assert!(default_shards() >= 1);
    }

    #[test]
    fn traced_map_emits_one_shard_event_per_worker() {
        use std::sync::Arc;

        let memory = Arc::new(onoc_telemetry::MemoryRecorder::new());
        let handle = RecorderHandle::new(memory.clone());
        let items: Vec<u64> = (0..10).collect();
        let out = parallel_map_traced(&items, 3, |&x| x + 1, &handle, "square");
        assert_eq!(out, (1..=10).collect::<Vec<u64>>());
        let mut events = memory.events();
        assert_eq!(events.len(), 3, "one event per shard");
        events.sort_by_key(|e| match e {
            TelemetryEvent::ShardCompleted { shard, .. } => *shard,
            _ => panic!("unexpected event kind"),
        });
        let mut total_items = 0;
        for (index, event) in events.iter().enumerate() {
            let TelemetryEvent::ShardCompleted {
                label,
                shard,
                items,
                ..
            } = event
            else {
                panic!("unexpected event kind");
            };
            assert_eq!(label, "square");
            assert_eq!(*shard, index as u64);
            total_items += items;
        }
        assert_eq!(total_items, 10);
    }
}
