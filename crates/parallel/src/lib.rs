//! Deterministic fork/join helpers shared across the workspace.
//!
//! The sweep binaries of `onoc-bench` and the many-ONI epoch loops of
//! `onoc-sim` both need the same primitive: evaluate independent work items
//! on a handful of `std::thread` workers and merge the results back **in
//! input order**, so the parallel run is bit-identical to the serial one.
//! This crate holds that primitive at the bottom of the dependency graph,
//! where both the simulator and the benchmark harness can reach it without
//! depending on each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Maps `f` over `items` in parallel: the slice is split into contiguous
/// chunks, one `std::thread` scope worker per chunk, and the results are
/// merged back **in input order** — the output is indistinguishable from a
/// serial `items.iter().map(f).collect()`, just faster.
///
/// `shards` is clamped to `[1, items.len()]`; pass
/// [`std::thread::available_parallelism`] (or [`default_shards`]) for one
/// shard per core.
pub fn parallel_map<T, R, F>(items: &[T], shards: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let shards = shards.clamp(1, items.len());
    let chunk_size = items.len().div_ceil(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        // Joining in spawn order is the ordered merge: chunk i's results
        // land before chunk i+1's.
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("sweep worker panicked"))
            .collect()
    })
}

/// The shard count the sweep binaries and the simulator use by default: one
/// per available core.
#[must_use]
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for shards in [1, 2, 3, 8, 97, 200] {
            assert_eq!(
                parallel_map(&items, shards, |&x| x * x),
                expected,
                "{shards} shards"
            );
        }
        assert!(parallel_map(&[] as &[u64], 4, |&x| x).is_empty());
        assert!(default_shards() >= 1);
    }
}
