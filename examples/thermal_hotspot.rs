//! Thermally-adaptive NoC under a hotspot: a hot compute cluster sits under
//! ONI 3, so the channels near it run 40 K above the rest of the chip.  The
//! thermally-aware runtime manager configures every transfer at the
//! temperature of its destination channel: hot channels are forced onto the
//! Hamming-coded path (the uncoded link budget collapses under residual ring
//! drift), cool channels keep riding the fast uncoded path.
//!
//! Run with: `cargo run --example thermal_hotspot`

use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::ScenarioBuilder;
use onoc_ecc::thermal::ThermalEnvironment;
use onoc_ecc::units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let environment = ThermalEnvironment::Hotspot {
        base: Celsius::new(30.0),
        peak: Celsius::new(85.0),
        center: 3,
        decay_per_hop: 0.55,
    };

    let report = ScenarioBuilder::new()
        .oni_count(12)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 40,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(3.0)
        .nominal_ber(1e-11)
        .seed(7)
        .prescribed(environment)
        .build()?
        .run();

    println!("Hotspot at ONI 3 (85 degC peak over a 30 degC base), LatencyFirst traffic:");
    println!();
    println!(
        "{:<6} {:>10} {:>12} {:>16} {:>16}",
        "ONI", "T (degC)", "scheme", "Pchannel (mW)", "Ptune (mW/lane)"
    );
    for oni in report.active_onis() {
        println!(
            "{:<6} {:>10.1} {:>12} {:>16.1} {:>16.2}",
            oni.oni,
            oni.final_temperature_c,
            oni.scheme.to_string(),
            oni.channel_power_mw,
            oni.tuning_power_mw_per_lane,
        );
    }
    println!();
    println!(
        "{} of {} messages ran on a non-baseline scheme; {} distinct schemes in use.",
        report.reconfigured_messages,
        report.stats.delivered_messages,
        report.distinct_final_schemes(),
    );
    println!(
        "Mean latency {:.1} ns, throughput {:.1} Gb/s, {:.2} pJ/bit.",
        report.stats.mean_latency_ns(),
        report.stats.throughput_gbps(),
        report.stats.energy_per_bit_pj(),
    );
    println!();
    println!("Reading the table: channels within ~2 hops of the hotspot are too hot for the");
    println!("uncoded link budget and fall back to H(71,64); the heater (tuning) power term");
    println!("also grows towards the hotspot. Remote channels keep the fast uncoded path.");
    Ok(())
}
