//! Real-time scenario: a hard-deadline application (the paper's "execution
//! deadlines have to be met for real-time applications") shares the
//! interconnect with background traffic.  The link manager keeps the
//! real-time flows on the fast uncoded path and the simulator verifies the
//! deadline behaviour under increasing congestion.
//!
//! Run with: `cargo run --example realtime_deadline`

use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::ScenarioBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Real-time traffic with a 60 ns deadline, increasing hotspot pressure:\n");
    println!(
        "{:<28} {:>10} {:>14} {:>14} {:>16}",
        "load (msgs/node)", "scheme", "mean lat (ns)", "max lat (ns)", "deadline misses"
    );
    for &messages_per_node in &[5u64, 15, 30, 60] {
        let report = ScenarioBuilder::new()
            .oni_count(12)
            .pattern(TrafficPattern::Hotspot {
                destination: 4,
                messages_per_node,
            })
            .class(TrafficClass::RealTime)
            .words_per_message(16)
            .mean_inter_arrival_ns(2.0)
            .deadline_slack_ns(Some(60.0))
            .nominal_ber(1e-11)
            .seed(99)
            .build()?
            .run();
        println!(
            "{:<28} {:>10} {:>14.1} {:>14.1} {:>10} / {:<5}",
            messages_per_node,
            report.baseline_scheme.to_string(),
            report.stats.mean_latency_ns(),
            report.stats.max_latency_ns,
            report.stats.deadline_misses,
            report.stats.delivered_messages,
        );
    }
    println!();
    println!("The manager keeps real-time flows on the uncoded path (CT = 1.0);");
    println!("deadline misses appear only when the hotspot channel saturates.");

    // What would happen if the OS forced the real-time class onto a coded
    // scheme?  The multimedia class makes the manager pick one.
    let report = ScenarioBuilder::new()
        .oni_count(12)
        .pattern(TrafficPattern::Hotspot {
            destination: 4,
            messages_per_node: 30,
        })
        .class(TrafficClass::Multimedia)
        .words_per_message(16)
        .mean_inter_arrival_ns(2.0)
        .deadline_slack_ns(Some(60.0))
        .nominal_ber(1e-11)
        .seed(99)
        .build()?
        .run();
    println!(
        "\nSame load on the coded path ({}): {} deadline misses out of {} messages — \
         the latency cost of the redundancy bits is visible under congestion.",
        report.baseline_scheme, report.stats.deadline_misses, report.stats.delivered_messages
    );
    Ok(())
}
