//! Full optical-NoC simulation: run the same mixed set of traffic patterns
//! with each manager class and compare latency, throughput, energy and
//! reliability — a preview of the paper's stated future work ("simulating the
//! execution of standard benchmark applications").
//!
//! Run with: `cargo run --example noc_simulation`

use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::ScenarioBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let patterns = [
        (
            "uniform",
            TrafficPattern::UniformRandom {
                messages_per_node: 30,
            },
        ),
        (
            "transpose",
            TrafficPattern::Transpose {
                messages_per_node: 30,
            },
        ),
        (
            "neighbor",
            TrafficPattern::NearestNeighbor {
                messages_per_node: 30,
            },
        ),
        (
            "hotspot",
            TrafficPattern::Hotspot {
                destination: 2,
                messages_per_node: 30,
            },
        ),
    ];
    let classes = [
        TrafficClass::RealTime,
        TrafficClass::Bulk,
        TrafficClass::Multimedia,
    ];

    println!(
        "{:<12} {:<12} {:>9} {:>14} {:>14} {:>14} {:>12}",
        "pattern", "class", "scheme", "mean lat (ns)", "thru (Gb/s)", "pJ/bit", "corrected"
    );
    for (name, pattern) in patterns {
        for class in classes {
            let report = ScenarioBuilder::new()
                .oni_count(12)
                .pattern(pattern)
                .class(class)
                .words_per_message(16)
                .mean_inter_arrival_ns(3.0)
                .nominal_ber(1e-9)
                .seed(13)
                .build()?
                .run();
            println!(
                "{:<12} {:<12} {:>9} {:>14.1} {:>14.1} {:>14.2} {:>12}",
                name,
                format!("{class:?}"),
                report.baseline_scheme.to_string(),
                report.stats.mean_latency_ns(),
                report.stats.throughput_gbps(),
                report.stats.energy_per_bit_pj(),
                report.stats.corrected_words,
            );
        }
    }
    println!("\nReading the table: the uncoded (RealTime) rows are the fastest but the most power hungry;");
    println!(
        "the coded rows trade a longer communication time for roughly half the channel power,"
    );
    println!("exactly the trade-off of Fig. 6 of the paper, now visible at the network level.");
    Ok(())
}
