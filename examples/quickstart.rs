//! Quickstart: configure the paper's nanophotonic link, compare the three
//! coding configurations at a target BER and push a real word through the
//! encode → corrupt → decode datapath.
//!
//! Run with: `cargo run --example quickstart`

use onoc_ecc::ecc::monte_carlo::BinarySymmetricChannel;
use onoc_ecc::ecc::EccScheme;
use onoc_ecc::interface::{InterfaceConfig, Receiver, Transmitter};
use onoc_ecc::link::report::render_operating_points;
use onoc_ecc::link::NanophotonicLink;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The link evaluated in the paper: 12 ONIs, 16 wavelengths, 6 cm
    //    waveguide, 64-bit IP bus at 1 GHz, 10 Gb/s modulation.
    let link = NanophotonicLink::paper_link();

    // 2. Ask for operating points at the paper's headline BER target.
    let target_ber = 1e-11;
    let points = link.feasible_points(&EccScheme::paper_schemes(), target_ber);
    println!("Operating points at BER = {target_ber:.0e}:\n");
    println!("{}", render_operating_points(&points));

    let uncoded = link.operating_point(EccScheme::Uncoded, target_ber)?;
    let h74 = link.operating_point(EccScheme::Hamming74, target_ber)?;
    println!(
        "Laser power saving with H(7,4): {:.0}% ({} -> {})\n",
        100.0
            * (1.0
                - h74.laser.laser_electrical_power.value()
                    / uncoded.laser.laser_electrical_power.value()),
        uncoded.laser.laser_electrical_power,
        h74.laser.laser_electrical_power,
    );

    // 3. BER = 1e-12 is unreachable without coding but fine with it.
    match link.operating_point(EccScheme::Uncoded, 1e-12) {
        Err(e) => println!("Uncoded at 1e-12: {e}"),
        Ok(_) => println!("Uncoded at 1e-12 unexpectedly feasible"),
    }
    let coded = link.operating_point(EccScheme::Hamming7164, 1e-12)?;
    println!(
        "H(71,64) at 1e-12: feasible with {} of laser power\n",
        coded.laser.laser_electrical_power
    );

    // 4. Push a real 64-bit word through the electrical datapath over a noisy
    //    channel running at the raw BER tolerated by H(7,4).
    let config = InterfaceConfig::paper_default();
    let tx = Transmitter::new(config.clone());
    let rx = Receiver::new(config);
    let word = 0xCAFE_F00D_DEAD_BEEFu64;
    let stream = tx.encode_word(word, EccScheme::Hamming74)?;
    let mut channel = BinarySymmetricChannel::new(h74.laser.raw_ber * 1e4, 42);
    let (received, flips) = channel.transmit(&stream);
    let decoded = rx.decode_stream(&received, EccScheme::Hamming74)?;
    println!(
        "Sent 0x{word:016X}, channel flipped {flips} bit(s), decoder corrected {} block(s), received 0x{:016X}",
        decoded.corrected_blocks, decoded.word
    );
    assert_eq!(
        decoded.word, word,
        "H(7,4) should have corrected the sparse errors"
    );

    // 5. Repeated queries are answered from the memoized operating-point
    //    cache; its counters render directly.
    for _ in 0..4 {
        link.operating_point_memoized(EccScheme::Hamming7164, target_ber, link.ambient())?;
    }
    println!(
        "\nSolver cache after 4 repeated queries: {}",
        link.cache_counters()
    );
    Ok(())
}
