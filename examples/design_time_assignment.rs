//! Design-time thermal-aware wavelength assignment over a workload heat map.
//!
//! A hot compute cluster under one corner of the interposer warms the ONIs
//! near it, so their ring banks spend the whole run fighting a large
//! common-mode drift.  The GLOW-style assigner fixes the biggest share of
//! that bill *at synthesis time*: given the workload's steady-state heat map
//! and each chip instance's fabrication offsets, it permutes the
//! logical-wavelength → ring mapping per ONI so the rings land near their
//! served wavelengths once the package is warm — before the runtime manager
//! or the heaters do anything at all.
//!
//! The example runs the same workload-heated scenario twice — unassigned
//! and design-assigned — and compares the per-ONI tuning bills, then shows
//! how runtime barrel shifting composes with a baked-in assignment when the
//! chip runs colder than it was designed for.
//!
//! Run with: `cargo run --example design_time_assignment`

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::{NanophotonicLink, TrafficClass};
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{DecisionPolicy, DesignAssignmentConfig, ScenarioBuilder};
use onoc_ecc::thermal::{
    AssignmentStrategy, BankTuningMode, RcNetworkParameters, ThermalModelSpec, WorkloadTrace,
};
use onoc_ecc::units::Celsius;

const ONIS: usize = 8;

fn builder() -> ScenarioBuilder {
    ScenarioBuilder::new()
        .oni_count(ONIS)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 60,
        })
        .class(TrafficClass::Bulk)
        .words_per_message(16)
        .seed(5)
        .workload_heated(
            RcNetworkParameters::paper_package(),
            WorkloadTrace::hot_cluster(ONIS, 2, 300.0, 0.4),
        )
        .policy(DecisionPolicy::epoch_gated())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The design-time heat map the assigner plans for: the steady state the
    // workload traces alone drive the RC network to.
    let spec = ThermalModelSpec::WorkloadHeated {
        network: RcNetworkParameters::paper_package(),
        traces: WorkloadTrace::hot_cluster(ONIS, 2, 300.0, 0.4),
    };
    let design = spec.design_temperatures(ONIS)?;
    println!("Workload heat map (300 mW cluster at ONI 2), design temperatures:");
    let temps: Vec<String> = design.iter().map(|t| format!("{:.1}", t.value())).collect();
    println!("  [{}] degC\n", temps.join(", "));

    // Same traffic, same heat, with and without the assigner.
    let assigned_scenario = builder()
        .design_assignment(DesignAssignmentConfig::greedy_refine(7))
        .build()?;
    let assignments = assigned_scenario.assignments().to_vec();
    let plain = builder().build()?.run();
    let assigned = assigned_scenario.run();

    println!("Per-ONI outcome (H-coded bulk traffic, epoch-gated feedback):");
    println!("  oni  T_design  rotation  Ptune unassigned  Ptune assigned  (mW/lane)");
    for oni in 0..ONIS {
        println!(
            "  {oni:>3}  {:>8.1}  {:>8}  {:>16.3}  {:>14.3}",
            design[oni].value(),
            format!("{:+}", assignments[oni].design_offset(0)),
            plain.per_oni[oni].tuning_power_mw_per_lane,
            assigned.per_oni[oni].tuning_power_mw_per_lane,
        );
    }
    let fleet = |report: &onoc_ecc::sim::RunReport| -> f64 {
        report
            .per_oni
            .iter()
            .map(|o| o.tuning_power_mw_per_lane)
            .sum()
    };
    println!(
        "  fleet tuning power: {:.3} -> {:.3} mW/lane ({:.0}% saved), total energy {:.0} -> {:.0} pJ\n",
        fleet(&plain),
        fleet(&assigned),
        (1.0 - fleet(&assigned) / fleet(&plain)) * 100.0,
        plain.stats.energy_pj,
        assigned.stats.energy_pj,
    );

    // Composition with the runtime: a chip designed for 85 degC that finds
    // itself at the 25 degC calibration point.  Pure heating pays for the
    // baked-in rotation; the barrel-shift search simply hops back.
    let base = NanophotonicLink::paper_link();
    let assigner = base.wavelength_assigner(AssignmentStrategy::GreedyRefine, 7);
    let hot_assignment = assigner.assign(&base.ring_bank_state_at(Celsius::new(85.0)));
    let designed = NanophotonicLink::paper_link().with_wavelength_assignment(hot_assignment)?;
    let cold = Celsius::new(25.0);
    let pure = designed.operating_point_at(EccScheme::Hamming7164, 1e-11, cold)?;
    let hopped = designed
        .clone()
        .with_bank_tuning_mode(BankTuningMode::full_barrel_shift(16))
        .operating_point_at(EccScheme::Hamming7164, 1e-11, cold)?;
    println!("Design-for-85-degC chip running at 25 degC:");
    println!(
        "  pure heater:  {:.3} mW/lane of tuning (fighting the baked-in rotation)",
        pure.power.tuning.value()
    );
    println!(
        "  barrel shift: {:.3} mW/lane, runtime shift {:+} rings (the hop undoes the design)",
        hopped.power.tuning.value(),
        hopped.thermal.barrel_shift
    );
    Ok(())
}
