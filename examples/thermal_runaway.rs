//! Self-heating trajectory of a nanophotonic channel — and how coding stops
//! the runaway.
//!
//! Nothing in this example prescribes a temperature: the chip starts at the
//! 25 °C package ambient and every kelvin above that is deposited by the
//! link itself (laser + ring heaters + drivers) into a per-ONI thermal RC
//! network.  The loop this produces:
//!
//! 1. **heat-up** — latency-first traffic rides the fast uncoded path, whose
//!    laser burns ≈ 220 mW of static power per channel; the package climbs;
//! 2. **runaway pressure** — heating inflates the laser *and* heater power,
//!    which heats the package further (the positive feedback);
//! 3. **switch** — past ≈ 50 °C the uncoded budget collapses; the manager
//!    falls back to H(71,64), cutting the static power nearly in half;
//! 4. **cool-down** — the coded channel deposits less heat, so the node
//!    temperature falls back below the switch point;
//! 5. **hold** — the uncoded path looks feasible again at the cooler
//!    temperature, but the scheme-revert hysteresis refuses to flap back
//!    (that would just re-trigger the runaway).
//!
//! Run with: `cargo run --example thermal_runaway`

use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{DecisionPolicy, ScenarioBuilder};
use onoc_ecc::thermal::RcNetworkParameters;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = RcNetworkParameters::paper_package();
    let tau = network.time_constant_ns();
    let report = ScenarioBuilder::new()
        .oni_count(8)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 180,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(8.0)
        .nominal_ber(1e-11)
        .seed(23)
        .activity_coupled(network)
        .policy(DecisionPolicy::epoch_gated())
        .build()?
        .run();

    let first_switch = report
        .switch_log
        .first()
        .expect("self-heating must force a switch");
    let peak = report
        .trajectory
        .iter()
        .map(|s| s.max_temperature_c)
        .fold(f64::NEG_INFINITY, f64::max);
    let last = report.trajectory.last().expect("non-empty run");

    println!("Self-heating trajectory (hottest ONI), no prescribed temperatures:");
    println!();
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "t (ns)", "Tmax (degC)", "coded", "phase"
    );
    let stride = (report.trajectory.len() / 18).max(1);
    for sample in report.trajectory.iter().step_by(stride) {
        let phase = if sample.time_ns < first_switch.time_ns {
            "heat-up (uncoded)"
        } else if sample.max_temperature_c > last.max_temperature_c + 0.5 {
            "cool-down (coded)"
        } else {
            "hold (hysteresis)"
        };
        println!(
            "{:>9.0} {:>12.1} {:>9}/{:<2} {:>18}",
            sample.time_ns,
            sample.max_temperature_c,
            sample.reconfigured_onis,
            report.per_oni.len(),
            phase
        );
    }
    println!();
    println!(
        "Switch: {} -> {} at t = {:.0} ns (~{:.1} thermal time constants), T = {:.1} degC.",
        first_switch.from,
        first_switch.to,
        first_switch.time_ns,
        first_switch.time_ns / tau,
        first_switch.temperature_c,
    );
    println!(
        "Peak {peak:.1} degC -> final {:.1} degC: the coded operating point sheds enough",
        last.max_temperature_c
    );
    println!("laser power to cool the package below the switch temperature.");
    println!();
    for oni in report.per_oni.iter().take(3) {
        println!(
            "ONI {}: peak {:.1} degC, final {:.1} degC, settled on {} ({:.0} mW), {} switch(es)",
            oni.oni,
            oni.peak_temperature_c,
            oni.final_temperature_c,
            oni.scheme,
            oni.channel_power_mw,
            oni.scheme_switches,
        );
    }
    println!();
    println!(
        "Hysteresis holds: the uncoded path is feasible again at {:.1} degC, but undoing",
        last.max_temperature_c
    );
    let DecisionPolicy::EpochGated {
        revert_hysteresis_k,
        ..
    } = report.config.resolved_policy()
    else {
        unreachable!("this run is epoch-gated");
    };
    println!(
        "the switch needs a {revert_hysteresis_k:.0} K excursion from the {:.1} degC switch \
         point — otherwise",
        first_switch.temperature_c
    );
    println!("the channel would reheat, collapse, switch, cool and flap forever.");
    println!();
    println!(
        "Energy: {:.2} pJ/bit ({:.0}% static); manager re-asks {}, photonic solves {} \
         (cache hit rate {:.0}%).",
        report.stats.energy_per_bit_pj(),
        100.0 * report.stats.static_energy_pj / report.stats.energy_pj,
        report.decisions,
        report.solver_cache.misses,
        100.0 * report.solver_cache.hit_rate(),
    );
    Ok(())
}
