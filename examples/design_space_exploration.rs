//! Design-space exploration: sweep every code in the registry across BER
//! targets, print the Fig. 6b-style Pareto plane and the code-length
//! ablation, and show how the picture changes on a longer waveguide.
//!
//! Run with: `cargo run --example design_space_exploration`

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::interface::InterfaceConfig;
use onoc_ecc::link::explore::{decade_targets, DesignSpace};
use onoc_ecc::link::report::{format_ber, TextTable};
use onoc_ecc::link::NanophotonicLink;
use onoc_ecc::photonics::{PaperCalibration, Waveguide};
use onoc_ecc::units::{Centimeters, DecibelsPerCentimeter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's own sweep.
    let sweep = DesignSpace::code_ablation();
    println!("Code-length ablation on the paper channel (BER = 1e-11):\n");
    let mut table = TextTable::new(vec![
        "scheme",
        "rate",
        "Plaser (mW)",
        "Pchannel (mW)",
        "CT",
        "pJ/bit",
        "Pareto",
    ]);
    for p in sweep.pareto_front(1e-11) {
        let s = p.point.scheme();
        table.push_row(vec![
            s.to_string(),
            format!("{:.3}", s.rate()),
            format!("{:.2}", p.point.laser.laser_electrical_power.value()),
            format!("{:.1}", p.point.channel_power.value()),
            format!("{:.2}", p.point.communication_time_factor()),
            format!("{:.2}", p.point.energy_per_bit.value()),
            if p.on_front { "yes" } else { "no" }.to_owned(),
        ]);
    }
    println!("{table}");

    // 2. Which BER targets are reachable by which schemes?
    println!("Feasibility map (rows: schemes, columns: BER targets; x = feasible):\n");
    let targets = decade_targets(6, 12);
    let link = sweep.link();
    let mut header = vec!["scheme".to_owned()];
    header.extend(targets.iter().map(|&b| format_ber(b)));
    let mut feasibility = TextTable::new(header);
    for &scheme in sweep.schemes() {
        let mut row = vec![scheme.to_string()];
        for &ber in &targets {
            row.push(
                if link.operating_point(scheme, ber).is_ok() {
                    "x"
                } else {
                    "."
                }
                .to_owned(),
            );
        }
        feasibility.push_row(row);
    }
    println!("{feasibility}");

    // 3. A longer, lossier waveguide: coding becomes mandatory earlier.
    let mut calibration = PaperCalibration::dac17();
    calibration.geometry.waveguide =
        Waveguide::new(Centimeters::new(10.0), DecibelsPerCentimeter::new(0.274));
    let long_link = NanophotonicLink::new(calibration, InterfaceConfig::paper_default());
    println!("On a 10 cm waveguide at BER = 1e-11:");
    for scheme in EccScheme::paper_schemes() {
        match long_link.operating_point(scheme, 1e-11) {
            Ok(p) => println!(
                "  {:<9} feasible, P_laser = {}",
                scheme.to_string(),
                p.laser.laser_electrical_power
            ),
            Err(e) => println!("  {:<9} {e}", scheme.to_string()),
        }
    }
    Ok(())
}
