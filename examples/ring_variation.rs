//! Per-ring fabrication variation and channel-hopping tuning.
//!
//! Every fabricated micro-ring lands a few tens of picometres off its design
//! resonance (σ ≈ 40 pm is typical for silicon photonics), and the whole
//! bank drifts together as the chip heats.  This example builds one chip
//! instance with per-ring offsets, shows the bank's spectral state, and
//! compares the two tuning policies on it:
//!
//! * **pure heater** — every ring heats its full offset back onto the grid;
//! * **barrel shift** — re-map logical wavelengths to the nearest-resonant
//!   physical rings (wrapping through the free spectral range) and heat only
//!   the residual, cf. the channel hopping of Cooling Codes.
//!
//! Run with: `cargo run --example ring_variation`

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::NanophotonicLink;
use onoc_ecc::thermal::{BankTuningMode, FabricationVariation};
use onoc_ecc::units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let variation = FabricationVariation::new(0.040, 7); // sigma = 40 pm, chip #7
    let pure = NanophotonicLink::paper_link().with_fabrication_variation(variation);
    let barrel = NanophotonicLink::paper_link()
        .with_fabrication_variation(variation)
        .with_bank_tuning_mode(BankTuningMode::full_barrel_shift(16));

    // The as-built bank at the 25 degC calibration point.
    let state = pure.ring_bank_state_at(Celsius::new(25.0));
    println!("Chip instance (sigma = 40 pm, seed 7), fabrication offsets in pm:");
    let offsets: Vec<String> = (0..state.ring_count())
        .map(|i| format!("{:+.0}", state.fabrication_nm(i) * 1000.0))
        .collect();
    println!("  [{}]", offsets.join(", "));
    println!(
        "  worst ring is {:.0} pm off grid before any drift\n",
        state.worst_detuning_nm(0.1).abs() * 1000.0
    );

    println!("H(71,64) at BER 1e-11, pure heater vs barrel shift:");
    println!("  T (degC) | Ptune pure | Ptune barrel | shift | worst residual");
    for t in [25.0, 45.0, 65.0, 85.0] {
        let p = pure.operating_point_at(EccScheme::Hamming7164, 1e-11, Celsius::new(t))?;
        let b = barrel.operating_point_at(EccScheme::Hamming7164, 1e-11, Celsius::new(t))?;
        println!(
            "  {t:>8.0} | {:>7.3} mW | {:>9.3} mW | {:>+5} | {:>+.1} pm",
            p.power.tuning.value(),
            b.power.tuning.value(),
            b.thermal.barrel_shift,
            b.thermal.residual_drift.nanometers() * 1000.0,
        );
    }

    let hot = Celsius::new(85.0);
    let p = pure.operating_point_at(EccScheme::Hamming7164, 1e-11, hot)?;
    let b = barrel.operating_point_at(EccScheme::Hamming7164, 1e-11, hot)?;
    let saving = 1.0 - b.power.tuning.value() / p.power.tuning.value();
    println!(
        "\nAt 85 degC the barrel shift hops {} rings and saves {:.0}% of the tuning power",
        b.thermal.barrel_shift,
        100.0 * saving
    );
    println!(
        "({:.3} mW -> {:.3} mW per lane of {} rings).",
        p.power.tuning.value(),
        b.power.tuning.value(),
        b.thermal.rings_per_lane
    );

    // Channel hopping even changes *feasibility*: the uncoded link dies of
    // residual drift around 50-55 degC under pure heating, but survives the
    // whole range when the rings hop instead.
    let uncoded_pure = pure.operating_point_at(EccScheme::Uncoded, 1e-11, hot);
    let uncoded_barrel = barrel.operating_point_at(EccScheme::Uncoded, 1e-11, hot);
    println!(
        "\nUncoded at 85 degC: pure heater -> {}, barrel shift -> {}.",
        if uncoded_pure.is_ok() {
            "feasible"
        } else {
            "infeasible"
        },
        if uncoded_barrel.is_ok() {
            "feasible"
        } else {
            "infeasible"
        },
    );
    assert!(uncoded_pure.is_err() && uncoded_barrel.is_ok());
    assert!(
        saving > 0.5,
        "barrel shift must save most of the tuning power"
    );
    Ok(())
}
