//! Energy-aware multimedia streaming: the paper's motivating "power hungry
//! multimedia-like applications (e.g. by degrading the BER)".  A streaming
//! producer/consumer pair runs under three manager policies and the example
//! reports the energy per delivered bit and the observed reliability.
//!
//! Run with: `cargo run --example energy_aware_streaming`

use onoc_ecc::link::{LinkManager, TrafficClass};
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::ScenarioBuilder;
use onoc_ecc::units::Milliwatts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Static view: what the manager would pick per class, with and
    //    without a per-waveguide power budget.
    let manager = LinkManager::paper_manager();
    println!("Manager decisions at the nominal BER (1e-11):");
    for (class, decision) in manager.configure_all() {
        match decision {
            Some(d) => println!(
                "  {:<11} -> {:<9} ({:.0} mW per waveguide, CT {:.2})",
                format!("{class:?}"),
                d.point.scheme().to_string(),
                d.point.channel_power.value(),
                d.point.communication_time_factor()
            ),
            None => println!("  {class:?} -> no feasible configuration"),
        }
    }
    let budgeted = LinkManager::paper_manager().with_power_budget(Milliwatts::new(150.0));
    println!("\nWith a 150 mW per-waveguide budget:");
    for (class, decision) in budgeted.configure_all() {
        match decision {
            Some(d) => println!("  {:<11} -> {}", format!("{class:?}"), d.point.scheme()),
            None => println!(
                "  {:<11} -> request rejected (budget too tight for CT constraint)",
                format!("{class:?}")
            ),
        }
    }

    // 2. Dynamic view: run the streaming workload at different BER targets
    //    (the multimedia class tolerates degraded BER to save energy).
    println!("\nStreaming 10 bursts x 24 messages from ONI 0 to ONI 6:");
    println!(
        "{:<14} {:>10} {:>14} {:>16} {:>16}",
        "nominal BER", "scheme", "Pchannel (mW)", "energy (pJ/bit)", "observed BER"
    );
    for &ber in &[1e-11, 1e-9, 1e-6, 1e-4] {
        let report = ScenarioBuilder::new()
            .oni_count(12)
            .pattern(TrafficPattern::Streaming {
                source: 0,
                destination: 6,
                bursts: 10,
                burst_messages: 24,
            })
            .class(TrafficClass::Multimedia)
            .words_per_message(32)
            .mean_inter_arrival_ns(5.0)
            .nominal_ber(ber)
            .seed(7)
            .build()?
            .run();
        println!(
            "{:<14.0e} {:>10} {:>14.1} {:>16.2} {:>16.2e}",
            ber,
            report.baseline_scheme.to_string(),
            report.baseline_channel_power_mw,
            report.stats.energy_per_bit_pj(),
            report.stats.observed_ber(),
        );
    }
    println!(
        "\nDegrading the BER target lets the laser back off further, cutting the energy per bit;"
    );
    println!(
        "the residual error rate stays below the (relaxed) target thanks to the Hamming decoder."
    );
    Ok(())
}
